//! The mounted filesystem.
//!
//! Semantics follow ext4's defaults where they matter to the paper:
//! ordered-mode journaling (file data in place before the metadata that
//! references it commits), a 5-second commit interval (drive it with
//! [`Filesystem::tick`]), and abort-to-read-only on a journal I/O failure.

use crate::alloc::Bitmap;
use crate::dir::{decode_entries, encode_entries, split_path, DirEntry};
use crate::error::FsError;
use crate::inode::{Inode, InodeKind, DIRECT_POINTERS, INDIRECT_POINTERS, MAX_FILE_SIZE, NO_BLOCK};
use crate::journal::{read_fs_block, write_fs_block, Journal, JournalConfig};
use crate::layout::{
    SbState, Superblock, FS_BLOCK_SIZE, INODES_PER_BLOCK, INODE_DISK_SIZE, ROOT_INO,
};
use deepnote_blockdev::BlockDevice;
use deepnote_sim::{Clock, SimTime};
use deepnote_telemetry::{Layer, Tracer, Value};
use serde::{Deserialize, Serialize};

/// Whether the filesystem is serving writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsState {
    /// Normal operation.
    Active,
    /// The journal aborted; the filesystem is read-only. The paper's Ext4
    /// crash state.
    Aborted {
        /// Kernel-convention errno (−5).
        errno: i32,
    },
}

/// Capacity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsStats {
    /// Total data blocks.
    pub total_blocks: u64,
    /// Free data blocks.
    pub free_blocks: u64,
    /// Total inodes.
    pub total_inodes: u64,
    /// Free inodes.
    pub free_inodes: u64,
    /// Journal commits since mount.
    pub journal_commits: u64,
}

/// A mounted journaling filesystem over a block device.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Filesystem<D: BlockDevice> {
    dev: D,
    clock: Clock,
    sb: Superblock,
    inode_bitmap: Bitmap,
    block_bitmap: Bitmap,
    /// Bitmap staging is incremental: only blocks whose bits changed since
    /// they were last staged are journaled again.
    dirty_inode_bitmap: bool,
    dirty_block_bitmap: std::collections::BTreeSet<u64>,
    /// In-memory block cache standing in for the OS page cache: reads of
    /// previously seen blocks cost no device time, which is what lets
    /// metadata-heavy workloads run at memory speed on a slow disk.
    cache: std::collections::BTreeMap<u64, Vec<u8>>,
    /// FIFO insertion order for eviction when a cache limit is set.
    cache_order: std::collections::VecDeque<u64>,
    /// Optional page-cache capacity in blocks (None = unbounded). A small
    /// limit models memory pressure: cold reads return to the device.
    cache_limit: Option<usize>,
    /// Ordered-mode dirty data runs (start block, bytes) awaiting the
    /// next commit, which flushes them before the journal record.
    pending_data: Vec<(u64, Vec<u8>)>,
    journal: Journal,
    state: FsState,
    tracer: Tracer,
    track: u32,
}

impl<D: BlockDevice> Filesystem<D> {
    /// Formats `dev` and mounts the fresh filesystem.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] for tiny devices; device errors otherwise.
    pub fn format(mut dev: D, clock: Clock) -> Result<Self, FsError> {
        Self::format_with(&mut dev, &clock, JournalConfig::default())?;
        Self::mount_with(dev, clock, JournalConfig::default()).map(|(fs, _)| fs)
    }

    /// Formats and mounts with an explicit journal configuration.
    ///
    /// # Errors
    ///
    /// As for [`Filesystem::format`].
    pub fn format_with_config(
        mut dev: D,
        clock: Clock,
        cfg: JournalConfig,
    ) -> Result<Self, FsError> {
        Self::format_with(&mut dev, &clock, cfg)?;
        Self::mount_with(dev, clock, cfg).map(|(fs, _)| fs)
    }

    /// Formats without mounting (shared by [`Filesystem::format`]).
    fn format_with(dev: &mut D, clock: &Clock, _cfg: JournalConfig) -> Result<(), FsError> {
        let mut sb = Superblock::plan(dev.num_blocks())?;
        sb.state = SbState::Clean;

        Journal::format(dev, sb.journal_start, sb.journal_blocks)?;

        // Inode bitmap: inode 0 reserved, inode 1 = root.
        let mut inode_bitmap = Bitmap::new(sb.total_inodes);
        inode_bitmap.set(0);
        inode_bitmap.set(ROOT_INO);
        let mut ib_block = vec![0u8; FS_BLOCK_SIZE];
        ib_block[..inode_bitmap.as_bytes().len()].copy_from_slice(inode_bitmap.as_bytes());
        write_fs_block(dev, sb.inode_bitmap_block, &ib_block)?;

        // Block bitmap: all data blocks free.
        let block_bitmap = Bitmap::new(sb.data_blocks());
        let bytes = block_bitmap.as_bytes();
        for i in 0..sb.block_bitmap_blocks {
            let mut block = vec![0u8; FS_BLOCK_SIZE];
            let start = (i as usize) * FS_BLOCK_SIZE;
            if start < bytes.len() {
                let n = (bytes.len() - start).min(FS_BLOCK_SIZE);
                block[..n].copy_from_slice(&bytes[start..start + n]);
            }
            write_fs_block(dev, sb.block_bitmap_start + i, &block)?;
        }

        // Inode table: zeroed, with root directory in slot 1.
        let root = Inode::empty(InodeKind::Directory);
        let mut table0 = vec![0u8; FS_BLOCK_SIZE];
        let slot = (ROOT_INO % INODES_PER_BLOCK) as usize * INODE_DISK_SIZE;
        table0[slot..slot + INODE_DISK_SIZE].copy_from_slice(&root.to_bytes());
        write_fs_block(dev, sb.inode_table_start, &table0)?;
        for i in 1..sb.inode_table_blocks {
            write_fs_block(dev, sb.inode_table_start + i, &vec![0u8; FS_BLOCK_SIZE])?;
        }

        write_fs_block(dev, 0, &sb.to_block())?;
        let _ = clock;
        Ok(())
    }

    /// Mounts an existing filesystem, replaying the journal if needed.
    /// Returns the filesystem and the number of transactions replayed.
    ///
    /// # Errors
    ///
    /// [`FsError::BadSuperblock`] if `dev` is not formatted; device errors
    /// otherwise.
    pub fn mount(dev: D, clock: Clock) -> Result<(Self, usize), FsError> {
        Self::mount_with(dev, clock, JournalConfig::default())
    }

    /// Mounts with an explicit journal configuration.
    ///
    /// # Errors
    ///
    /// As for [`Filesystem::mount`].
    pub fn mount_with(
        mut dev: D,
        clock: Clock,
        cfg: JournalConfig,
    ) -> Result<(Self, usize), FsError> {
        let raw = read_fs_block(&mut dev, 0)?;
        let mut sb = Superblock::from_block(&raw)?;

        let (journal, replayed) = Journal::recover(
            cfg,
            &mut dev,
            sb.journal_start,
            sb.journal_blocks,
            clock.now(),
        )?;

        // Load bitmaps (post-replay images).
        let ib_raw = read_fs_block(&mut dev, sb.inode_bitmap_block)?;
        let inode_bitmap = Bitmap::from_bytes(sb.total_inodes, &ib_raw);
        let mut bb_bytes = Vec::new();
        for i in 0..sb.block_bitmap_blocks {
            bb_bytes.extend_from_slice(&read_fs_block(&mut dev, sb.block_bitmap_start + i)?);
        }
        let block_bitmap = Bitmap::from_bytes(sb.data_blocks(), &bb_bytes);

        let state = match sb.state {
            SbState::HasError => FsState::Aborted {
                errno: sb.error_code,
            },
            _ => FsState::Active,
        };
        sb.state = if state == FsState::Active {
            SbState::Dirty
        } else {
            SbState::HasError
        };
        sb.mount_count += 1;
        write_fs_block(&mut dev, 0, &sb.to_block())?;

        Ok((
            Filesystem {
                dev,
                clock,
                sb,
                inode_bitmap,
                block_bitmap,
                dirty_inode_bitmap: false,
                dirty_block_bitmap: std::collections::BTreeSet::new(),
                cache: std::collections::BTreeMap::new(),
                cache_order: std::collections::VecDeque::new(),
                cache_limit: None,
                pending_data: Vec::new(),
                journal,
                state,
                tracer: Tracer::disabled(),
                track: 0,
            },
            replayed,
        ))
    }

    /// Commits outstanding work, marks the superblock clean, and returns
    /// the device.
    ///
    /// # Errors
    ///
    /// Any commit or superblock-write failure; the device is lost on
    /// error by design (a crashed unmount leaves a dirty filesystem for
    /// the next mount to recover).
    pub fn unmount(mut self) -> Result<D, FsError> {
        self.commit()?;
        self.sb.state = SbState::Clean;
        write_fs_block(&mut self.dev, 0, &self.sb.to_block())?;
        Ok(self.dev)
    }

    /// Current availability state.
    pub fn state(&self) -> FsState {
        self.state
    }

    /// Capacity counters.
    pub fn stats(&self) -> FsStats {
        FsStats {
            total_blocks: self.sb.data_blocks(),
            free_blocks: self.block_bitmap.free(),
            total_inodes: self.sb.total_inodes,
            free_inodes: self.inode_bitmap.free(),
            journal_commits: self.journal.commits(),
        }
    }

    /// The clock this filesystem runs on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Attaches a tracer; journal commits become fs-layer spans on
    /// `track`, timestamped by this filesystem's clock.
    pub fn set_tracer(&mut self, tracer: Tracer, track: u32) {
        self.tracer = tracer;
        self.track = track;
    }

    /// Device-write failures absorbed by the journal's retry loop so far —
    /// what the kernel would report as buffer I/O errors.
    pub fn buffer_io_errors(&self) -> u64 {
        self.journal.write_failures()
    }

    /// Direct access to the underlying device (e.g. for attack wiring).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    // ----- block/inode plumbing -------------------------------------

    fn read_effective(&mut self, fs_block: u64) -> Result<Vec<u8>, FsError> {
        if let Some(img) = self.journal.pending_image(fs_block) {
            return Ok(img.to_vec());
        }
        if let Some(cached) = self.cache.get(&fs_block) {
            return Ok(cached.clone());
        }
        let raw = read_fs_block(&mut self.dev, fs_block)?;
        self.cache_insert(fs_block, raw.clone());
        Ok(raw)
    }

    /// Inserts into the page cache, evicting oldest entries when a cache
    /// limit is configured. Metadata blocks pinned by the running journal
    /// transaction are never evicted (the journal holds its own images).
    fn cache_insert(&mut self, fs_block: u64, data: Vec<u8>) {
        if self.cache.insert(fs_block, data).is_none() {
            self.cache_order.push_back(fs_block);
        }
        self.enforce_cache_limit();
    }

    fn enforce_cache_limit(&mut self) {
        if let Some(limit) = self.cache_limit {
            while self.cache.len() > limit {
                let Some(oldest) = self.cache_order.pop_front() else {
                    break;
                };
                self.cache.remove(&oldest);
            }
        }
    }

    /// Caps the page cache at `limit` blocks (`None` = unbounded, the
    /// default). Small limits model memory pressure: previously cached
    /// blocks must be re-read from the device — which fails under attack.
    pub fn set_cache_limit(&mut self, limit: Option<usize>) {
        self.cache_limit = limit;
        self.enforce_cache_limit();
    }

    /// Buffers a contiguous run of dirty data blocks (ordered mode): the
    /// pages go into the cache immediately (reads see them, like a real
    /// page cache) and reach the device during the next commit, *before*
    /// the journal record.
    fn write_data_run(&mut self, start_block: u64, buf: &[u8]) -> Result<(), FsError> {
        for (i, chunk) in buf.chunks(FS_BLOCK_SIZE).enumerate() {
            self.cache_insert(start_block + i as u64, chunk.to_vec());
        }
        // Extend the previous run if contiguous (common for appends).
        if let Some((start, bytes)) = self.pending_data.last_mut() {
            if *start + (bytes.len() / FS_BLOCK_SIZE) as u64 == start_block {
                bytes.extend_from_slice(buf);
                return Ok(());
            }
        }
        self.pending_data.push((start_block, buf.to_vec()));
        Ok(())
    }

    /// Stages a metadata image into the journal and mirrors it into the
    /// page cache (the staged image is what the block will hold once
    /// checkpointed).
    fn stage_and_cache(&mut self, fs_block: u64, img: Vec<u8>) {
        self.cache_insert(fs_block, img.clone());
        self.journal.stage(fs_block, img);
    }

    fn inode_location(&self, ino: u64) -> (u64, usize) {
        let block = self.sb.inode_table_start + ino / INODES_PER_BLOCK;
        let offset = (ino % INODES_PER_BLOCK) as usize * INODE_DISK_SIZE;
        (block, offset)
    }

    fn load_inode(&mut self, ino: u64) -> Result<Inode, FsError> {
        let (block, offset) = self.inode_location(ino);
        let raw = self.read_effective(block)?;
        Inode::from_bytes(&raw[offset..offset + INODE_DISK_SIZE])
    }

    fn stage_inode(&mut self, ino: u64, inode: &Inode) -> Result<(), FsError> {
        let (block, offset) = self.inode_location(ino);
        let mut raw = self.read_effective(block)?;
        raw[offset..offset + INODE_DISK_SIZE].copy_from_slice(&inode.to_bytes());
        self.stage_and_cache(block, raw);
        Ok(())
    }

    fn stage_bitmaps(&mut self) {
        if self.dirty_inode_bitmap {
            let mut ib_block = vec![0u8; FS_BLOCK_SIZE];
            let ib = self.inode_bitmap.as_bytes();
            ib_block[..ib.len()].copy_from_slice(ib);
            let target = self.sb.inode_bitmap_block;
            self.stage_and_cache(target, ib_block);
            self.dirty_inode_bitmap = false;
        }
        let bytes = self.block_bitmap.as_bytes().to_vec();
        for i in std::mem::take(&mut self.dirty_block_bitmap) {
            let mut block = vec![0u8; FS_BLOCK_SIZE];
            let start = (i as usize) * FS_BLOCK_SIZE;
            if start < bytes.len() {
                let n = (bytes.len() - start).min(FS_BLOCK_SIZE);
                block[..n].copy_from_slice(&bytes[start..start + n]);
            }
            let target = self.sb.block_bitmap_start + i;
            self.stage_and_cache(target, block);
        }
    }

    fn mark_block_bit_dirty(&mut self, bit_index: u64) {
        self.dirty_block_bitmap
            .insert(bit_index / (FS_BLOCK_SIZE as u64 * 8));
    }

    fn alloc_data_block(&mut self) -> Result<u64, FsError> {
        let idx = self.block_bitmap.alloc()?;
        self.mark_block_bit_dirty(idx);
        Ok(self.sb.data_start + idx)
    }

    fn free_data_block(&mut self, fs_block: u64) {
        let idx = fs_block - self.sb.data_start;
        self.block_bitmap.free_item(idx);
        self.mark_block_bit_dirty(idx);
    }

    /// The `index`-th data block of an inode, allocating it (and the
    /// indirect block) when `allocate` is set. Returns `NO_BLOCK` when
    /// unallocated and `allocate` is false.
    fn inode_block(
        &mut self,
        inode: &mut Inode,
        index: u64,
        allocate: bool,
    ) -> Result<u64, FsError> {
        if index < DIRECT_POINTERS as u64 {
            let i = index as usize;
            if inode.direct[i] == NO_BLOCK && allocate {
                inode.direct[i] = self.alloc_data_block()?;
            }
            return Ok(inode.direct[i]);
        }
        let ind_index = index - DIRECT_POINTERS as u64;
        if ind_index >= INDIRECT_POINTERS as u64 {
            return Err(FsError::FileTooLarge);
        }
        if inode.indirect == NO_BLOCK {
            if !allocate {
                return Ok(NO_BLOCK);
            }
            inode.indirect = self.alloc_data_block()?;
            self.stage_and_cache(inode.indirect, vec![0u8; FS_BLOCK_SIZE]);
        }
        let mut raw = self.read_effective(inode.indirect)?;
        let off = (ind_index as usize) * 8;
        let ptr = raw
            .get(off..off + 8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(FsError::BadSuperblock)?;
        if ptr != NO_BLOCK || !allocate {
            return Ok(ptr);
        }
        let new = self.alloc_data_block()?;
        raw[off..off + 8].copy_from_slice(&new.to_le_bytes());
        let target = inode.indirect;
        self.stage_and_cache(target, raw);
        Ok(new)
    }

    fn read_inode_data(&mut self, inode: &Inode) -> Result<Vec<u8>, FsError> {
        let mut inode = inode.clone();
        let mut out = vec![0u8; inode.size as usize];
        let blocks = Inode::blocks_for(inode.size);
        for b in 0..blocks {
            let fs_block = self.inode_block(&mut inode, b, false)?;
            let start = (b as usize) * FS_BLOCK_SIZE;
            let end = ((b as usize + 1) * FS_BLOCK_SIZE).min(out.len());
            if fs_block == NO_BLOCK {
                out[start..end].fill(0);
            } else {
                let raw = self.read_effective(fs_block)?;
                out[start..end].copy_from_slice(&raw[..end - start]);
            }
        }
        Ok(out)
    }

    /// Replaces a *directory's* content (journaled like metadata).
    fn write_dir_data(&mut self, ino: u64, inode: &mut Inode, data: &[u8]) -> Result<(), FsError> {
        if data.len() as u64 > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        let old_blocks = Inode::blocks_for(inode.size);
        let new_blocks = Inode::blocks_for(data.len() as u64);
        for b in 0..new_blocks {
            let fs_block = self.inode_block(inode, b, true)?;
            let mut img = vec![0u8; FS_BLOCK_SIZE];
            let start = (b as usize) * FS_BLOCK_SIZE;
            let end = ((b as usize + 1) * FS_BLOCK_SIZE).min(data.len());
            img[..end - start].copy_from_slice(&data[start..end]);
            self.stage_and_cache(fs_block, img);
        }
        // Free any excess blocks.
        for b in new_blocks..old_blocks {
            let fs_block = self.inode_block(inode, b, false)?;
            if fs_block != NO_BLOCK {
                self.free_data_block(fs_block);
                if b < DIRECT_POINTERS as u64 {
                    inode.direct[b as usize] = NO_BLOCK;
                }
            }
        }
        inode.size = data.len() as u64;
        self.stage_inode(ino, inode)?;
        self.stage_bitmaps();
        Ok(())
    }

    // ----- path resolution -------------------------------------------

    fn resolve(&mut self, path: &str) -> Result<(u64, Inode), FsError> {
        let parts = split_path(path)?;
        let mut ino = ROOT_INO;
        let mut inode = self.load_inode(ino)?;
        for part in parts {
            if inode.kind != InodeKind::Directory {
                return Err(FsError::NotADirectory);
            }
            let data = self.read_inode_data(&inode)?;
            let entries = decode_entries(&data)?;
            let entry = entries
                .iter()
                .find(|e| e.name == part)
                .ok_or(FsError::NotFound)?;
            ino = entry.ino;
            inode = self.load_inode(ino)?;
        }
        Ok((ino, inode))
    }

    fn resolve_parent<'p>(&mut self, path: &'p str) -> Result<(u64, Inode, &'p str), FsError> {
        let parts = split_path(path)?;
        let Some((name, parents)) = parts.split_last() else {
            return Err(FsError::InvalidPath); // root has no parent
        };
        let mut ino = ROOT_INO;
        let mut inode = self.load_inode(ino)?;
        for part in parents {
            if inode.kind != InodeKind::Directory {
                return Err(FsError::NotADirectory);
            }
            let data = self.read_inode_data(&inode)?;
            let entries = decode_entries(&data)?;
            let entry = entries
                .iter()
                .find(|e| e.name == *part)
                .ok_or(FsError::NotFound)?;
            ino = entry.ino;
            inode = self.load_inode(ino)?;
        }
        if inode.kind != InodeKind::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((ino, inode, name))
    }

    fn check_writable(&self) -> Result<(), FsError> {
        match self.state {
            FsState::Active => Ok(()),
            FsState::Aborted { errno } => Err(FsError::JournalAborted { errno }),
        }
    }

    // ----- public operations ------------------------------------------

    fn create_node(&mut self, path: &str, kind: InodeKind) -> Result<u64, FsError> {
        self.check_writable()?;
        let (parent_ino, mut parent, name) = self.resolve_parent(path)?;
        let data = self.read_inode_data(&parent)?;
        let mut entries = decode_entries(&data)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.inode_bitmap.alloc()?;
        self.dirty_inode_bitmap = true;
        let inode = Inode::empty(kind);
        self.stage_inode(ino, &inode)?;
        entries.push(DirEntry {
            ino,
            name: name.to_string(),
        });
        let encoded = encode_entries(&entries);
        self.write_dir_data(parent_ino, &mut parent, &encoded)?;
        Ok(ino)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`], [`FsError::NotFound`] (missing parent),
    /// [`FsError::JournalAborted`] when read-only, or space/I/O errors.
    pub fn create(&mut self, path: &str) -> Result<(), FsError> {
        self.create_node(path, InodeKind::Directory).map(|_| ())
    }

    /// Creates an empty regular file.
    ///
    /// # Errors
    ///
    /// As for [`Filesystem::create`].
    pub fn create_file(&mut self, path: &str) -> Result<(), FsError> {
        self.create_node(path, InodeKind::File).map(|_| ())
    }

    /// Writes `data` into a file at byte `offset`, extending it as needed.
    /// File data goes to disk in place (ordered mode); the metadata that
    /// references it is journaled.
    ///
    /// # Errors
    ///
    /// [`FsError::Io`] if a data write fails (the op fails but the
    /// filesystem survives); [`FsError::JournalAborted`] when read-only;
    /// the usual lookup/space errors otherwise.
    pub fn write_file(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.check_writable()?;
        let end = offset + data.len() as u64;
        if end > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        let (ino, mut inode) = self.resolve(path)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsADirectory);
        }
        if data.is_empty() {
            return Ok(());
        }
        let first_block = offset / FS_BLOCK_SIZE as u64;
        let last_block = (end - 1) / FS_BLOCK_SIZE as u64;
        let mut written = 0usize;
        // Contiguously allocated blocks are coalesced into single device
        // writes (ordered mode: data in place, single attempt each).
        let mut run_start: u64 = 0;
        let mut run_buf: Vec<u8> = Vec::new();
        for b in first_block..=last_block {
            // A block that did not exist before this write reads as
            // zeros — no device I/O for freshly allocated space.
            let existed = self.inode_block(&mut inode, b, false)? != NO_BLOCK;
            let fs_block = self.inode_block(&mut inode, b, true)?;
            let block_start = b * FS_BLOCK_SIZE as u64;
            let in_block_off = offset.max(block_start) - block_start;
            let in_block_end = (end - block_start).min(FS_BLOCK_SIZE as u64);
            let chunk_len = (in_block_end - in_block_off) as usize;

            let full_overwrite = in_block_off == 0 && chunk_len == FS_BLOCK_SIZE;
            let mut img = if full_overwrite || !existed {
                vec![0u8; FS_BLOCK_SIZE]
            } else {
                // Partial block: read-modify-write (page cache assisted).
                self.read_effective(fs_block)?
            };
            img[in_block_off as usize..in_block_off as usize + chunk_len]
                .copy_from_slice(&data[written..written + chunk_len]);
            written += chunk_len;

            let contiguous = !run_buf.is_empty()
                && fs_block == run_start + (run_buf.len() / FS_BLOCK_SIZE) as u64;
            if contiguous {
                run_buf.extend_from_slice(&img);
            } else {
                if !run_buf.is_empty() {
                    self.write_data_run(run_start, &run_buf)?;
                }
                run_start = fs_block;
                run_buf = img;
            }
        }
        if !run_buf.is_empty() {
            self.write_data_run(run_start, &run_buf)?;
        }
        if end > inode.size {
            inode.size = end;
        }
        self.stage_inode(ino, &inode)?;
        self.stage_bitmaps();
        Ok(())
    }

    /// Reads up to `len` bytes from a file at byte `offset` (short reads
    /// at end of file).
    ///
    /// # Errors
    ///
    /// Lookup and device errors; reads are allowed even when aborted
    /// (read-only remount semantics).
    pub fn read_file(&mut self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let (_, inode) = self.resolve(path)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsADirectory);
        }
        if offset >= inode.size {
            return Ok(Vec::new());
        }
        let end = (offset + len as u64).min(inode.size);
        let mut inode = inode;
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let b = pos / FS_BLOCK_SIZE as u64;
            let fs_block = self.inode_block(&mut inode, b, false)?;
            let block_start = b * FS_BLOCK_SIZE as u64;
            let take = (end - pos).min(FS_BLOCK_SIZE as u64 - (pos - block_start)) as usize;
            if fs_block == NO_BLOCK {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let raw = self.read_effective(fs_block)?;
                let off = (pos - block_start) as usize;
                out.extend_from_slice(&raw[off..off + take]);
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotADirectory`] plus device
    /// errors.
    pub fn list_dir(&mut self, path: &str) -> Result<Vec<DirEntry>, FsError> {
        let (_, inode) = self.resolve(path)?;
        if inode.kind != InodeKind::Directory {
            return Err(FsError::NotADirectory);
        }
        let data = self.read_inode_data(&inode)?;
        decode_entries(&data)
    }

    /// Returns the inode for a path.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] and device errors.
    pub fn stat(&mut self, path: &str) -> Result<Inode, FsError> {
        self.resolve(path).map(|(_, inode)| inode)
    }

    /// Whether a path exists.
    pub fn exists(&mut self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// Atomically renames a file or directory. Both directory updates
    /// share one journal transaction, so either both become durable or
    /// neither does.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for a missing source or destination parent,
    /// [`FsError::AlreadyExists`] if the destination exists, plus the
    /// usual state errors.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        self.check_writable()?;
        // Refuse to move a directory into its own subtree — that would
        // orphan the whole subtree into an unreachable cycle.
        let from_parts = split_path(from)?;
        let to_parts = split_path(to)?;
        if !from_parts.is_empty()
            && to_parts.len() > from_parts.len()
            && to_parts[..from_parts.len()] == from_parts[..]
        {
            return Err(FsError::InvalidPath);
        }
        if from_parts == to_parts || from_parts.is_empty() {
            return Err(FsError::InvalidPath);
        }
        let (from_parent_ino, mut from_parent, from_name) = self.resolve_parent(from)?;
        let from_name = from_name.to_string();
        let data = self.read_inode_data(&from_parent)?;
        let mut from_entries = decode_entries(&data)?;
        let idx = from_entries
            .iter()
            .position(|e| e.name == from_name)
            .ok_or(FsError::NotFound)?;
        let moved = from_entries[idx].clone();

        let (to_parent_ino, _, to_name) = self.resolve_parent(to)?;
        let to_name = to_name.to_string();
        if to_parent_ino == from_parent_ino {
            // Same directory: a pure entry rename.
            if from_entries.iter().any(|e| e.name == to_name) {
                return Err(FsError::AlreadyExists);
            }
            from_entries[idx].name = to_name;
            let encoded = encode_entries(&from_entries);
            self.write_dir_data(from_parent_ino, &mut from_parent, &encoded)?;
            return Ok(());
        }
        let mut to_parent = self.load_inode(to_parent_ino)?;
        let to_data = self.read_inode_data(&to_parent)?;
        let mut to_entries = decode_entries(&to_data)?;
        if to_entries.iter().any(|e| e.name == to_name) {
            return Err(FsError::AlreadyExists);
        }
        from_entries.remove(idx);
        to_entries.push(DirEntry {
            ino: moved.ino,
            name: to_name,
        });
        let from_encoded = encode_entries(&from_entries);
        self.write_dir_data(from_parent_ino, &mut from_parent, &from_encoded)?;
        // Reload the destination parent in case the source update staged
        // a fresher image of a shared ancestor block.
        to_parent = self.load_inode(to_parent_ino)?;
        let to_encoded = encode_entries(&to_entries);
        self.write_dir_data(to_parent_ino, &mut to_parent, &to_encoded)?;
        Ok(())
    }

    /// Truncates (or shrinks) a file to `new_size` bytes, freeing any
    /// blocks past the new end and zeroing the tail of the last block.
    ///
    /// # Errors
    ///
    /// Lookup/state errors; [`FsError::FileTooLarge`] beyond the maximum
    /// file size.
    pub fn truncate(&mut self, path: &str, new_size: u64) -> Result<(), FsError> {
        self.check_writable()?;
        if new_size > MAX_FILE_SIZE {
            return Err(FsError::FileTooLarge);
        }
        let (ino, mut inode) = self.resolve(path)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsADirectory);
        }
        let old_blocks = Inode::blocks_for(inode.size);
        let new_blocks = Inode::blocks_for(new_size);
        for b in new_blocks..old_blocks {
            let fs_block = self.inode_block(&mut inode, b, false)?;
            if fs_block != NO_BLOCK {
                self.free_data_block(fs_block);
                if b < DIRECT_POINTERS as u64 {
                    inode.direct[b as usize] = NO_BLOCK;
                }
            }
        }
        // Zero the tail of the last kept block so stale bytes cannot
        // reappear if the file grows again.
        if !new_size.is_multiple_of(FS_BLOCK_SIZE as u64) && new_size < inode.size {
            let b = new_size / FS_BLOCK_SIZE as u64;
            let fs_block = self.inode_block(&mut inode, b, false)?;
            if fs_block != NO_BLOCK {
                let mut img = self.read_effective(fs_block)?;
                let keep = (new_size % FS_BLOCK_SIZE as u64) as usize;
                img[keep..].fill(0);
                self.write_data_run(fs_block, &img)?;
            }
        }
        inode.size = new_size;
        self.stage_inode(ino, &inode)?;
        self.stage_bitmaps();
        Ok(())
    }

    /// Removes a file or an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::DirectoryNotEmpty`] for non-empty directories, plus the
    /// usual lookup/state errors.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        self.check_writable()?;
        let (parent_ino, mut parent, name) = self.resolve_parent(path)?;
        let data = self.read_inode_data(&parent)?;
        let mut entries = decode_entries(&data)?;
        let idx = entries
            .iter()
            .position(|e| e.name == name)
            .ok_or(FsError::NotFound)?;
        let ino = entries[idx].ino;
        let mut inode = self.load_inode(ino)?;
        if inode.kind == InodeKind::Directory {
            let contents = self.read_inode_data(&inode)?;
            if !decode_entries(&contents)?.is_empty() {
                return Err(FsError::DirectoryNotEmpty);
            }
        }
        // Free data blocks.
        let blocks = Inode::blocks_for(inode.size);
        for b in 0..blocks {
            let fs_block = self.inode_block(&mut inode, b, false)?;
            if fs_block != NO_BLOCK {
                self.free_data_block(fs_block);
            }
        }
        if inode.indirect != NO_BLOCK {
            self.free_data_block(inode.indirect);
        }
        self.inode_bitmap.free_item(ino);
        self.dirty_inode_bitmap = true;
        self.stage_inode(ino, &Inode::empty(InodeKind::Free))?;
        entries.remove(idx);
        let encoded = encode_entries(&entries);
        self.write_dir_data(parent_ino, &mut parent, &encoded)?;
        Ok(())
    }

    /// Walks the tree depth-first from `path`, returning every entry's
    /// absolute path and inode, directories before their children.
    ///
    /// # Errors
    ///
    /// Lookup and device errors.
    pub fn walk(&mut self, path: &str) -> Result<Vec<(String, Inode)>, FsError> {
        let (_, inode) = self.resolve(path)?;
        let root = if path == "/" {
            String::new()
        } else {
            path.trim_end_matches('/').to_string()
        };
        let mut out = Vec::new();
        let mut stack = vec![(root, inode)];
        while let Some((prefix, inode)) = stack.pop() {
            if inode.kind == InodeKind::Directory {
                let data = self.read_inode_data(&inode)?;
                let mut entries = decode_entries(&data)?;
                // Reverse so the stack pops in directory order.
                entries.reverse();
                for e in entries {
                    let child = self.load_inode(e.ino)?;
                    let child_path = format!("{prefix}/{}", e.name);
                    out.push((child_path.clone(), child.clone()));
                    if child.kind == InodeKind::Directory {
                        stack.push((child_path, child));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Forces a journal commit (fsync semantics).
    ///
    /// # Errors
    ///
    /// [`FsError::JournalAborted`] when the commit-path I/O stays blocked
    /// past the journal's patience; the filesystem is then read-only.
    pub fn commit(&mut self) -> Result<(), FsError> {
        self.check_writable()?;
        let data_runs = std::mem::take(&mut self.pending_data);
        let t0 = self.clock.now();
        let commits_before = self.journal.commits();
        let result = self.journal.commit(&mut self.dev, &self.clock, &data_runs);
        if self.tracer.enabled(Layer::Fs)
            && (self.journal.commits() > commits_before || result.is_err())
        {
            self.tracer.span(
                Layer::Fs,
                self.track,
                "journal_commit",
                t0,
                self.clock.now().saturating_duration_since(t0),
                vec![
                    (
                        "outcome",
                        Value::Str(if result.is_ok() { "ok" } else { "aborted" }),
                    ),
                    ("data_runs", Value::U64(data_runs.len() as u64)),
                ],
            );
        }
        match result {
            Ok(()) => Ok(()),
            Err(FsError::JournalAborted { errno }) => {
                self.state = FsState::Aborted { errno };
                // Best-effort error mark on the superblock (may itself
                // fail under attack — ignore, like the kernel does).
                self.sb.state = SbState::HasError;
                self.sb.error_code = errno;
                let _ = write_fs_block(&mut self.dev, 0, &self.sb.to_block());
                Err(FsError::JournalAborted { errno })
            }
            Err(e) => Err(e),
        }
    }

    /// Drives the periodic commit timer: commits if the interval elapsed.
    /// Call this from the host's main loop (the OS layer does).
    ///
    /// # Errors
    ///
    /// As for [`Filesystem::commit`].
    pub fn tick(&mut self, now: SimTime) -> Result<(), FsError> {
        let work = !self.pending_data.is_empty();
        if self.state == FsState::Active && self.journal.commit_due(now, work) {
            self.commit()
        } else {
            Ok(())
        }
    }

    /// Lightweight consistency check for tests: returns human-readable
    /// problems (empty = consistent).
    ///
    /// # Errors
    ///
    /// Device errors while scanning.
    pub fn fsck(&mut self) -> Result<Vec<String>, FsError> {
        let mut problems = Vec::new();
        let mut used = std::collections::BTreeSet::new();
        for ino in 0..self.sb.total_inodes {
            if ino <= 1 || !self.inode_bitmap.is_set(ino) {
                continue;
            }
            let mut inode = self.load_inode(ino)?;
            if inode.kind == InodeKind::Free {
                problems.push(format!("inode {ino} allocated but free on disk"));
                continue;
            }
            let blocks = Inode::blocks_for(inode.size);
            for b in 0..blocks {
                let fs_block = self.inode_block(&mut inode, b, false)?;
                if fs_block == NO_BLOCK {
                    continue;
                }
                if !used.insert(fs_block) {
                    problems.push(format!("block {fs_block} multiply referenced"));
                }
                if !self.block_bitmap.is_set(fs_block - self.sb.data_start) {
                    problems.push(format!("block {fs_block} in use but free in bitmap"));
                }
            }
            if inode.indirect != NO_BLOCK
                && !self
                    .block_bitmap
                    .is_set(inode.indirect - self.sb.data_start)
            {
                problems.push(format!("indirect block of inode {ino} free in bitmap"));
            }
        }
        Ok(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::{FaultInjector, FaultPlan, IoError, MemDisk};
    use deepnote_sim::SimDuration;

    fn new_fs() -> Filesystem<MemDisk> {
        Filesystem::format(MemDisk::new(1 << 17), Clock::new()).unwrap()
    }

    #[test]
    fn format_mount_roundtrip() {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create("/etc").unwrap();
        fs.create_file("/etc/passwd").unwrap();
        fs.write_file("/etc/passwd", 0, b"root:x:0:0").unwrap();
        let dev = fs.unmount().unwrap();
        let (mut fs2, replayed) = Filesystem::mount(dev, clock).unwrap();
        assert_eq!(replayed, 0); // clean unmount committed everything
        assert_eq!(fs2.read_file("/etc/passwd", 0, 100).unwrap(), b"root:x:0:0");
        assert_eq!(fs2.fsck().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn hierarchy_and_listing() {
        let mut fs = new_fs();
        fs.create("/a").unwrap();
        fs.create("/a/b").unwrap();
        fs.create_file("/a/b/f").unwrap();
        let names: Vec<String> = fs
            .list_dir("/a/b")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["f"]);
        assert_eq!(fs.stat("/a/b/f").unwrap().kind, InodeKind::File);
        assert_eq!(fs.stat("/a").unwrap().kind, InodeKind::Directory);
        assert!(fs.exists("/a/b"));
        assert!(!fs.exists("/a/c"));
    }

    #[test]
    fn create_errors() {
        let mut fs = new_fs();
        fs.create_file("/f").unwrap();
        assert_eq!(fs.create_file("/f"), Err(FsError::AlreadyExists));
        assert_eq!(fs.create_file("/missing/f"), Err(FsError::NotFound));
        assert_eq!(fs.create_file("/f/under_file"), Err(FsError::NotADirectory));
        assert_eq!(fs.create_file("relative"), Err(FsError::InvalidPath));
    }

    #[test]
    fn write_read_offsets_and_extension() {
        let mut fs = new_fs();
        fs.create_file("/data").unwrap();
        fs.write_file("/data", 0, b"hello world").unwrap();
        fs.write_file("/data", 6, b"WORLD").unwrap();
        assert_eq!(fs.read_file("/data", 0, 64).unwrap(), b"hello WORLD");
        // Sparse extension.
        fs.write_file("/data", 10_000, b"far").unwrap();
        assert_eq!(fs.stat("/data").unwrap().size, 10_003);
        let hole = fs.read_file("/data", 5_000, 4).unwrap();
        assert_eq!(hole, vec![0, 0, 0, 0]);
        assert_eq!(fs.read_file("/data", 10_000, 3).unwrap(), b"far");
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        let mut fs = new_fs();
        fs.create_file("/big").unwrap();
        // 100 KiB > 12 direct blocks (48 KiB).
        let data: Vec<u8> = (0..102_400u32).map(|i| (i % 251) as u8).collect();
        fs.write_file("/big", 0, &data).unwrap();
        fs.commit().unwrap();
        assert_eq!(fs.read_file("/big", 0, data.len()).unwrap(), data);
        assert_ne!(fs.stat("/big").unwrap().indirect, NO_BLOCK);
        assert_eq!(fs.fsck().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn file_too_large_rejected() {
        let mut fs = new_fs();
        fs.create_file("/big").unwrap();
        assert_eq!(
            fs.write_file("/big", MAX_FILE_SIZE, b"x"),
            Err(FsError::FileTooLarge)
        );
    }

    #[test]
    fn walk_lists_whole_tree() {
        let mut fs = new_fs();
        fs.create("/a").unwrap();
        fs.create("/a/b").unwrap();
        fs.create_file("/a/b/f").unwrap();
        fs.create_file("/top").unwrap();
        let paths: Vec<String> = fs.walk("/").unwrap().into_iter().map(|(p, _)| p).collect();
        assert!(paths.contains(&"/a".to_string()), "{paths:?}");
        assert!(paths.contains(&"/a/b".to_string()), "{paths:?}");
        assert!(paths.contains(&"/a/b/f".to_string()), "{paths:?}");
        assert!(paths.contains(&"/top".to_string()), "{paths:?}");
        // Subtree walk.
        let sub: Vec<String> = fs.walk("/a").unwrap().into_iter().map(|(p, _)| p).collect();
        assert_eq!(sub, vec!["/a/b".to_string(), "/a/b/f".to_string()]);
        // Walking a file yields nothing.
        assert!(fs.walk("/top").unwrap().is_empty());
    }

    #[test]
    fn rename_within_directory() {
        let mut fs = new_fs();
        fs.create_file("/old").unwrap();
        fs.write_file("/old", 0, b"contents").unwrap();
        fs.rename("/old", "/new").unwrap();
        assert!(!fs.exists("/old"));
        assert_eq!(fs.read_file("/new", 0, 64).unwrap(), b"contents");
    }

    #[test]
    fn rename_across_directories() {
        let mut fs = new_fs();
        fs.create("/a").unwrap();
        fs.create("/b").unwrap();
        fs.create_file("/a/f").unwrap();
        fs.write_file("/a/f", 0, b"moved").unwrap();
        fs.rename("/a/f", "/b/g").unwrap();
        assert!(!fs.exists("/a/f"));
        assert_eq!(fs.read_file("/b/g", 0, 64).unwrap(), b"moved");
        assert!(fs.list_dir("/a").unwrap().is_empty());
        // Directories can move too.
        fs.rename("/a", "/b/sub").unwrap();
        assert!(fs.exists("/b/sub"));
        assert_eq!(fs.fsck().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn rename_errors() {
        let mut fs = new_fs();
        fs.create_file("/x").unwrap();
        fs.create_file("/y").unwrap();
        assert_eq!(fs.rename("/x", "/y"), Err(FsError::AlreadyExists));
        assert_eq!(fs.rename("/missing", "/z"), Err(FsError::NotFound));
        assert_eq!(fs.rename("/x", "/nodir/z"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_survives_remount() {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create_file("/before").unwrap();
        fs.write_file("/before", 0, b"payload").unwrap();
        fs.rename("/before", "/after").unwrap();
        let dev = fs.unmount().unwrap();
        let (mut fs2, _) = Filesystem::mount(dev, clock).unwrap();
        assert!(!fs2.exists("/before"));
        assert_eq!(fs2.read_file("/after", 0, 64).unwrap(), b"payload");
    }

    #[test]
    fn truncate_shrinks_and_zeroes_tail() {
        let mut fs = new_fs();
        fs.create_file("/t").unwrap();
        fs.write_file("/t", 0, &vec![0xFFu8; 10_000]).unwrap();
        let free_before = fs.stats().free_blocks;
        fs.truncate("/t", 5_000).unwrap();
        assert_eq!(fs.stat("/t").unwrap().size, 5_000);
        assert!(fs.stats().free_blocks > free_before);
        // Growing the file again reads zeros, not stale 0xFF.
        fs.write_file("/t", 9_000, b"tail").unwrap();
        let gap = fs.read_file("/t", 5_000, 16).unwrap();
        assert!(gap.iter().all(|&b| b == 0), "{gap:?}");
        assert_eq!(fs.read_file("/t", 9_000, 4).unwrap(), b"tail");
    }

    #[test]
    fn truncate_to_zero_frees_everything() {
        let mut fs = new_fs();
        let free0 = fs.stats().free_blocks;
        fs.create_file("/t").unwrap();
        fs.write_file("/t", 0, &vec![1u8; 20_000]).unwrap();
        fs.truncate("/t", 0).unwrap();
        // Only the root-directory content block remains allocated.
        assert_eq!(free0 - fs.stats().free_blocks, 1);
        assert_eq!(fs.read_file("/t", 0, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncate_rejects_directories_and_oversize() {
        let mut fs = new_fs();
        fs.create("/d").unwrap();
        assert_eq!(fs.truncate("/d", 0), Err(FsError::IsADirectory));
        fs.create_file("/f").unwrap();
        assert_eq!(
            fs.truncate("/f", MAX_FILE_SIZE + 1),
            Err(FsError::FileTooLarge)
        );
    }

    #[test]
    fn unlink_frees_space() {
        let mut fs = new_fs();
        let before = fs.stats();
        fs.create_file("/tmp_file").unwrap();
        fs.write_file("/tmp_file", 0, &vec![1u8; 20_000]).unwrap();
        assert!(fs.stats().free_blocks < before.free_blocks);
        fs.unlink("/tmp_file").unwrap();
        let after = fs.stats();
        assert_eq!(after.free_blocks, before.free_blocks);
        assert_eq!(after.free_inodes, before.free_inodes);
        assert!(!fs.exists("/tmp_file"));
    }

    #[test]
    fn unlink_nonempty_dir_refused() {
        let mut fs = new_fs();
        fs.create("/d").unwrap();
        fs.create_file("/d/f").unwrap();
        assert_eq!(fs.unlink("/d"), Err(FsError::DirectoryNotEmpty));
        fs.unlink("/d/f").unwrap();
        fs.unlink("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn crash_before_commit_loses_uncommitted_metadata() {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create_file("/durable").unwrap();
        fs.commit().unwrap();
        fs.create_file("/volatile").unwrap();
        // Crash: steal the device without unmounting.
        let dev = {
            let mut dev_out = MemDisk::new(1);
            std::mem::swap(&mut dev_out, fs.device_mut());
            drop(fs);
            dev_out
        };
        let (mut fs2, _) = Filesystem::mount(dev, clock).unwrap();
        assert!(fs2.exists("/durable"));
        assert!(!fs2.exists("/volatile"));
        assert_eq!(fs2.fsck().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn journal_replay_after_lost_checkpoint() {
        // Commit writes journal records before home locations; verify the
        // records are sufficient by replaying onto a device whose home
        // blocks were clobbered (tested in journal.rs at block level; here
        // end-to-end through mount()).
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create_file("/x").unwrap();
        fs.write_file("/x", 0, b"payload").unwrap();
        fs.commit().unwrap();
        let dev = fs.unmount().unwrap();
        let (mut fs2, _) = Filesystem::mount(dev, clock).unwrap();
        assert_eq!(fs2.read_file("/x", 0, 7).unwrap(), b"payload");
    }

    #[test]
    fn blocked_commit_aborts_filesystem_readonly() {
        let clock = Clock::new();
        let disk = MemDisk::new(1 << 17);
        let mut fs =
            Filesystem::format(FaultInjector::new(disk, FaultPlan::None), clock.clone()).unwrap();
        fs.create_file("/victim").unwrap();
        fs.write_file("/victim", 0, b"before attack").unwrap();
        fs.commit().unwrap();

        // The attack begins: writes block (reads of cached metadata would
        // still be served by the page cache on a real system).
        fs.device_mut().set_plan(FaultPlan::FailWritesFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        // Buffered writes still succeed — applications don't notice yet —
        // and the dirty page is readable (page-cache semantics) before it
        // ever reaches the device.
        fs.write_file("/victim", 0, b"dirty page data").unwrap();
        fs.create_file("/during").unwrap();
        assert_eq!(fs.read_file("/victim", 0, 64).unwrap(), b"dirty page data");
        let t0 = clock.now();
        let err = fs.commit().unwrap_err();
        assert_eq!(err, FsError::JournalAborted { errno: -5 });
        assert_eq!(fs.state(), FsState::Aborted { errno: -5 });
        let waited = (clock.now() - t0).as_secs_f64();
        assert!((74.0..80.0).contains(&waited), "waited {waited}");

        // Writes now fail instantly with the JBD error; reads still work
        // (the injector is still failing, so stop it first — remount-ro
        // semantics are about the fs state, not the device).
        fs.device_mut().set_plan(FaultPlan::None);
        assert_eq!(
            fs.create_file("/after"),
            Err(FsError::JournalAborted { errno: -5 })
        );
        assert_eq!(
            fs.write_file("/victim", 0, b"x"),
            Err(FsError::JournalAborted { errno: -5 })
        );
        assert!(fs.read_file("/victim", 0, 64).is_ok());
    }

    #[test]
    fn tick_commits_on_interval() {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create_file("/f").unwrap();
        assert_eq!(fs.stats().journal_commits, 0);
        fs.tick(clock.now()).unwrap();
        assert_eq!(fs.stats().journal_commits, 0); // interval not elapsed
        clock.advance(SimDuration::from_secs(5));
        fs.tick(clock.now()).unwrap();
        assert_eq!(fs.stats().journal_commits, 1);
    }

    #[test]
    fn aborted_state_survives_remount() {
        let clock = Clock::new();
        let disk = MemDisk::new(1 << 17);
        let mut fs =
            Filesystem::format(FaultInjector::new(disk, FaultPlan::None), clock.clone()).unwrap();
        fs.create_file("/f").unwrap();
        fs.device_mut().set_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        // Superblock error-mark write also fails (device dead) — that is
        // fine; stop the fault before remounting to model the attack
        // ending.
        let _ = fs.commit();
        fs.device_mut().set_plan(FaultPlan::None);
        // Mark was best-effort and failed; simulate the kernel retrying
        // the error mark once the device recovers, as ext4 does from its
        // error work queue.
        let _ = fs.commit(); // still aborted, returns error
        assert_eq!(fs.state(), FsState::Aborted { errno: -5 });
    }

    #[test]
    fn stats_track_usage() {
        let mut fs = new_fs();
        let s0 = fs.stats();
        fs.create_file("/f").unwrap();
        fs.write_file("/f", 0, &vec![0u8; 8192]).unwrap();
        let s1 = fs.stats();
        assert_eq!(s0.free_inodes - s1.free_inodes, 1);
        // Two data blocks for the file plus the root directory's first
        // content block (it was empty before the create).
        assert_eq!(s0.free_blocks - s1.free_blocks, 3);
        assert_eq!(s1.total_blocks, s0.total_blocks);
    }
}
