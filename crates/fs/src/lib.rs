//! An Ext4-like journaling filesystem for the Deep Note reproduction.
//!
//! The paper's first application victim is Ext4: under a sustained
//! acoustic attack "Ext4 terminates its service with a Journal Block
//! Device (JBD) error in code −5, which occurs because the journal
//! superblock cannot be updated due to the blocked I/O" (§4.4). This crate
//! implements enough of an ext4-style filesystem for that failure mode —
//! and the recovery that follows a crash — to emerge mechanically:
//!
//! * 4 KiB filesystem blocks over the 512-byte block device.
//! * A [`Superblock`], inode/block bitmaps, an inode table, hierarchical
//!   directories ([`layout`], [`inode`], [`dir`], [`alloc`]).
//! * A write-ahead [`Journal`] in JBD style: descriptor block → metadata
//!   block images → commit block, then checkpoint to home locations and a
//!   journal-superblock update; mounting replays committed transactions
//!   ([`journal`]).
//! * **Ordered-mode** semantics: file data is written in place before the
//!   transaction that references it commits.
//! * **Abort on blocked I/O**: journal writes are retried against the
//!   device until a patience budget (default 75 virtual seconds, matching
//!   kernel-stack timeouts) is exhausted, then the journal aborts with
//!   errno −5 and the filesystem goes read-only — the paper's crash.
//!
//! # Example
//!
//! ```
//! use deepnote_blockdev::MemDisk;
//! use deepnote_fs::Filesystem;
//! use deepnote_sim::Clock;
//!
//! let clock = Clock::new();
//! let mut fs = Filesystem::format(MemDisk::new(1 << 16), clock)?;
//! fs.create("/var")?;
//! fs.create_file("/var/log")?;
//! fs.write_file("/var/log", 0, b"hello")?;
//! fs.commit()?;
//! assert_eq!(fs.read_file("/var/log", 0, 5)?, b"hello");
//! # Ok::<(), deepnote_fs::FsError>(())
//! ```

pub mod alloc;
pub mod dir;
pub mod error;
pub mod fs;
pub mod inode;
pub mod journal;
pub mod layout;

pub use error::FsError;
pub use fs::{Filesystem, FsState, FsStats};
pub use inode::{Inode, InodeKind};
pub use journal::{Journal, JournalConfig};
pub use layout::{Superblock, FS_BLOCK_SIZE};
