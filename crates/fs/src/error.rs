//! Filesystem errors.

use deepnote_blockdev::IoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsError {
    /// An I/O error from the block layer that did not abort the journal
    /// (e.g. an ordered-mode data write failing).
    Io(IoError),
    /// The journal has aborted; the filesystem is read-only. This is the
    /// paper's observed Ext4 crash: "JBD error in code −5".
    JournalAborted {
        /// Kernel-convention (negative) errno, −5 in the paper.
        errno: i32,
    },
    /// No free data blocks or inodes.
    NoSpace,
    /// Path component not found.
    NotFound,
    /// Path already exists.
    AlreadyExists,
    /// Operation requires a directory but found a file (or vice versa).
    NotADirectory,
    /// Operation requires a file but found a directory.
    IsADirectory,
    /// Directory not empty on unlink.
    DirectoryNotEmpty,
    /// Malformed path or name (empty, too long, bad characters).
    InvalidPath,
    /// The on-disk structures are not a valid filesystem.
    BadSuperblock,
    /// Read or write beyond the maximum supported file size.
    FileTooLarge,
}

impl FsError {
    /// Whether this error means the filesystem as a whole is dead (vs. a
    /// single failed operation).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            FsError::JournalAborted { .. } | FsError::BadSuperblock
        )
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Io(e) => write!(f, "I/O error: {e}"),
            FsError::JournalAborted { errno } => {
                write!(
                    f,
                    "journal has aborted (JBD error {errno}); filesystem read-only"
                )
            }
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::DirectoryNotEmpty => write!(f, "directory not empty"),
            FsError::InvalidPath => write!(f, "invalid path"),
            FsError::BadSuperblock => write!(f, "bad superblock: not a filesystem"),
            FsError::FileTooLarge => write!(f, "file too large"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<IoError> for FsError {
    fn from(e: IoError) -> Self {
        FsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatal_classification() {
        assert!(FsError::JournalAborted { errno: -5 }.is_fatal());
        assert!(FsError::BadSuperblock.is_fatal());
        assert!(!FsError::NotFound.is_fatal());
        assert!(!FsError::Io(IoError::NoResponse).is_fatal());
    }

    #[test]
    fn display_matches_paper_language() {
        let e = FsError::JournalAborted { errno: -5 };
        assert!(e.to_string().contains("JBD error -5"), "{e}");
    }
}
