//! A minimal Ubuntu-server-like OS model.
//!
//! The paper's third victim is an Ubuntu 16.04 server whose root
//! filesystem sits on the attacked drive: "Ubuntu crash happens with an
//! indication of inability to access all files, including regular files
//! and common Linux commands, such as ls. Moreover, the reported errors
//! from dmesg indicate that the buffer I/O error on the storage device
//! leads to OS crashing" (§4.4). This crate models exactly that surface:
//!
//! * [`KernelLog`] — a dmesg-style ring buffer ([`klog`]).
//! * [`ServerOs`] — a server with a root filesystem, buffered writes with
//!   a periodic writeback daemon, command execution that reads binaries
//!   from disk (through the page cache), and crash escalation when the
//!   root filesystem aborts ([`server`]).
//!
//! # Example
//!
//! ```
//! use deepnote_blockdev::MemDisk;
//! use deepnote_os::ServerOs;
//! use deepnote_sim::Clock;
//!
//! let clock = Clock::new();
//! let mut os = ServerOs::install(MemDisk::new(1 << 17), clock)?;
//! let out = os.exec("ls")?;
//! assert!(out.contains("bin"));
//! # Ok::<(), deepnote_os::OsError>(())
//! ```

pub mod klog;
pub mod server;
pub mod service;

pub use klog::{KernelLog, LogLevel};
pub use server::{OsError, OsState, ServerOs};
pub use service::{RestartPolicy, Service, ServiceManager, ServiceState};
