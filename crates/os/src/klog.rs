//! A dmesg-style kernel log.

use deepnote_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Log severity, printk-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LogLevel {
    /// Informational.
    Info,
    /// Something is degraded.
    Warning,
    /// An operation failed.
    Error,
    /// The system is dying.
    Critical,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogLevel::Info => write!(f, "info"),
            LogLevel::Warning => write!(f, "warn"),
            LogLevel::Error => write!(f, "err"),
            LogLevel::Critical => write!(f, "crit"),
        }
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// When it was logged (virtual time).
    pub at: SimTime,
    /// Severity.
    pub level: LogLevel,
    /// Message text.
    pub message: String,
}

/// A bounded ring buffer of kernel messages.
///
/// # Example
///
/// ```
/// use deepnote_os::{KernelLog, LogLevel};
/// use deepnote_sim::SimTime;
///
/// let mut log = KernelLog::new(128);
/// log.log(SimTime::ZERO, LogLevel::Error, "Buffer I/O error on dev sda1");
/// assert_eq!(log.count_containing("Buffer I/O error"), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl KernelLog {
    /// Creates a log retaining up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        KernelLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest if full.
    pub fn log(&mut self, at: SimTime, level: LogLevel, message: impl Into<String>) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(LogEntry {
            at,
            level,
            message: message.into(),
        });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries whose message contains `needle`.
    pub fn count_containing(&self, needle: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.message.contains(needle))
            .count()
    }

    /// The most recent entry at `level` or worse, if any.
    pub fn last_at_least(&self, level: LogLevel) -> Option<&LogEntry> {
        self.entries.iter().rev().find(|e| e.level >= level)
    }

    /// Renders the log like `dmesg`.
    pub fn dmesg(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "[{:12.6}] <{}> {}\n",
                e.at.as_secs_f64(),
                e.level,
                e.message
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_and_counts() {
        let mut log = KernelLog::new(10);
        log.log(SimTime::ZERO, LogLevel::Info, "booting");
        log.log(
            SimTime::from_secs(1),
            LogLevel::Error,
            "Buffer I/O error on dev sda1, logical block 7",
        );
        log.log(
            SimTime::from_secs(2),
            LogLevel::Error,
            "Buffer I/O error on dev sda1, logical block 8",
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_containing("Buffer I/O error"), 2);
        assert_eq!(
            log.last_at_least(LogLevel::Error).unwrap().at,
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = KernelLog::new(2);
        log.log(SimTime::ZERO, LogLevel::Info, "one");
        log.log(SimTime::ZERO, LogLevel::Info, "two");
        log.log(SimTime::ZERO, LogLevel::Info, "three");
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.count_containing("one"), 0);
        assert_eq!(log.count_containing("three"), 1);
    }

    #[test]
    fn dmesg_format() {
        let mut log = KernelLog::new(4);
        log.log(
            SimTime::from_secs(81),
            LogLevel::Critical,
            "EXT4-fs error: journal has aborted",
        );
        let text = log.dmesg();
        assert!(
            text.contains("[   81.000000] <crit> EXT4-fs error"),
            "{text}"
        );
    }

    #[test]
    fn level_ordering() {
        assert!(LogLevel::Critical > LogLevel::Error);
        assert!(LogLevel::Error > LogLevel::Warning);
        assert!(LogLevel::Warning > LogLevel::Info);
    }
}
