//! The server OS: root filesystem, writeback daemon, command execution,
//! and crash escalation.

use crate::klog::{KernelLog, LogLevel};
use crate::service::{RestartPolicy, ServiceManager, SupervisionEvent};
use deepnote_blockdev::BlockDevice;
use deepnote_fs::{Filesystem, FsError, FsState};
use deepnote_sim::{Clock, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Commands installed in `/bin` by [`ServerOs::install`].
pub const INSTALLED_COMMANDS: [&str; 4] = ["ls", "cat", "ps", "sshd"];

/// Maximum buffered dirty writes before writers block on writeback.
const DIRTY_LIMIT: usize = 1_024;

/// Availability state of the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OsState {
    /// Up and serving.
    Running,
    /// The OS has crashed.
    Crashed {
        /// Virtual time of death.
        at: SimTime,
        /// Human-readable cause (mirrors the paper's observations).
        reason: String,
    },
}

/// Errors surfaced by OS-level calls.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OsError {
    /// The OS is down.
    Crashed {
        /// Cause recorded at crash time.
        reason: String,
    },
    /// A command or file access failed (EIO-style).
    InputOutput {
        /// What failed.
        what: String,
    },
    /// Installation/boot failure.
    Setup {
        /// Underlying filesystem error.
        fs: FsError,
    },
    /// No such command or file.
    NotFound,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::Crashed { reason } => write!(f, "system crashed: {reason}"),
            OsError::InputOutput { what } => write!(f, "{what}: Input/output error"),
            OsError::Setup { fs } => write!(f, "setup failed: {fs}"),
            OsError::NotFound => write!(f, "No such file or directory"),
        }
    }
}

impl std::error::Error for OsError {}

/// An Ubuntu-16.04-like server whose root filesystem lives on the victim
/// device.
///
/// Drive it with [`ServerOs::tick`] (once per virtual second is the
/// convention used by the experiments) and exercise it with
/// [`ServerOs::exec`] / [`ServerOs::write_log`].
#[derive(Debug)]
pub struct ServerOs<D: BlockDevice> {
    fs: Filesystem<D>,
    clock: Clock,
    klog: KernelLog,
    state: OsState,
    /// Buffered (not yet written back) log appends: (path, offset, data).
    dirty: VecDeque<(String, u64, Vec<u8>)>,
    writeback_interval: SimDuration,
    last_writeback: SimTime,
    log_cursor: u64,
    wb_failures_total: u64,
    buffer_errors_seen: u64,
    services: ServiceManager,
}

impl<D: BlockDevice> ServerOs<D> {
    /// Formats the device, installs a minimal system tree (`/bin` with
    /// commands, `/var/log`, `/etc`), and boots.
    ///
    /// # Errors
    ///
    /// [`OsError::Setup`] if the filesystem cannot be created.
    pub fn install(dev: D, clock: Clock) -> Result<Self, OsError> {
        let mut fs = Filesystem::format(dev, clock.clone()).map_err(|fs| OsError::Setup { fs })?;
        let setup = |fs: &mut Filesystem<D>| -> Result<(), FsError> {
            fs.create("/bin")?;
            for cmd in INSTALLED_COMMANDS {
                let path = format!("/bin/{cmd}");
                fs.create_file(&path)?;
                // A plausible binary: a few KiB of deterministic bytes.
                let body: Vec<u8> = (0..6_000u32).map(|i| (i % 251) as u8).collect();
                fs.write_file(&path, 0, &body)?;
            }
            fs.create("/etc")?;
            fs.create_file("/etc/hostname")?;
            fs.write_file("/etc/hostname", 0, b"deepnote-server\n")?;
            fs.create("/var")?;
            fs.create("/var/log")?;
            fs.create_file("/var/log/syslog")?;
            fs.commit()
        };
        setup(&mut fs).map_err(|e| OsError::Setup { fs: e })?;
        // Model memory pressure: a bounded page cache means binaries and
        // metadata can be evicted and must be re-read from the device.
        fs.set_cache_limit(Some(96));
        let mut services = ServiceManager::new();
        services.register(
            "sshd.service",
            "sshd",
            RestartPolicy::OnFailure { max_restarts: 5 },
        );
        services.register(
            "cron.service",
            "ps",
            RestartPolicy::OnFailure { max_restarts: 5 },
        );
        services.register(
            "syslogd.service",
            "cat",
            RestartPolicy::OnFailure { max_restarts: 5 },
        );
        let now = clock.now();
        let mut klog = KernelLog::new(4_096);
        klog.log(
            now,
            LogLevel::Info,
            "Ubuntu 16.04 LTS deepnote-server boot complete",
        );
        Ok(ServerOs {
            fs,
            clock,
            klog,
            state: OsState::Running,
            dirty: VecDeque::new(),
            writeback_interval: SimDuration::from_secs(5),
            last_writeback: now,
            log_cursor: 0,
            wb_failures_total: 0,
            buffer_errors_seen: 0,
            services,
        })
    }

    /// Current availability state.
    pub fn state(&self) -> &OsState {
        &self.state
    }

    /// Whether the server is still running.
    pub fn running(&self) -> bool {
        matches!(self.state, OsState::Running)
    }

    /// The kernel log.
    pub fn klog(&self) -> &KernelLog {
        &self.klog
    }

    /// The root filesystem (attack wiring, inspection).
    pub fn filesystem_mut(&mut self) -> &mut Filesystem<D> {
        &mut self.fs
    }

    /// Total failed writeback attempts.
    pub fn writeback_failures(&self) -> u64 {
        self.wb_failures_total
    }

    /// The service supervisor's view of the system's daemons.
    pub fn services(&self) -> &ServiceManager {
        &self.services
    }

    fn check_running(&self) -> Result<(), OsError> {
        match &self.state {
            OsState::Running => Ok(()),
            OsState::Crashed { reason, .. } => Err(OsError::Crashed {
                reason: reason.clone(),
            }),
        }
    }

    fn crash(&mut self, reason: impl Into<String>) {
        let reason = reason.into();
        let now = self.clock.now();
        self.klog.log(
            now,
            LogLevel::Critical,
            format!("Kernel panic - not syncing: {reason}"),
        );
        self.state = OsState::Crashed { at: now, reason };
    }

    /// Executes an installed command: reads its binary and (for `ls`) the
    /// directory it lists. Through the page cache this is free once warm;
    /// cold reads hit the device.
    ///
    /// # Errors
    ///
    /// [`OsError::Crashed`] when down, [`OsError::NotFound`] for unknown
    /// commands, [`OsError::InputOutput`] when the binary cannot be read —
    /// the paper's "inability to access … common Linux commands, such as
    /// ls".
    pub fn exec(&mut self, command: &str) -> Result<String, OsError> {
        self.check_running()?;
        let path = format!("/bin/{command}");
        if !INSTALLED_COMMANDS.contains(&command) {
            return Err(OsError::NotFound);
        }
        match self.fs.read_file(&path, 0, 6_000) {
            Ok(_) => {}
            Err(e) => {
                self.klog.log(
                    self.clock.now(),
                    LogLevel::Error,
                    format!("{command}: cannot access '{path}': Input/output error ({e})"),
                );
                return Err(OsError::InputOutput {
                    what: format!("{command}: cannot access '{path}'"),
                });
            }
        }
        // Minimal behaviours for the commands the experiments use.
        let out = match command {
            "ls" => match self.fs.list_dir("/") {
                Ok(entries) => entries
                    .into_iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join("  "),
                Err(e) => {
                    return Err(OsError::InputOutput {
                        what: format!("ls: reading directory '/' ({e})"),
                    })
                }
            },
            "cat" => String::new(),
            "ps" => "PID TTY TIME CMD\n1 ? 00:00:01 systemd".to_string(),
            "sshd" => "sshd: listening".to_string(),
            _ => unreachable!("command list checked above"),
        };
        Ok(out)
    }

    /// Appends a line to `/var/log/syslog` through the buffer cache (no
    /// immediate device I/O — the writeback daemon persists it).
    ///
    /// # Errors
    ///
    /// [`OsError::Crashed`] when down.
    pub fn write_log(&mut self, line: &str) -> Result<(), OsError> {
        self.check_running()?;
        let mut data = line.as_bytes().to_vec();
        data.push(b'\n');
        let len = data.len() as u64;
        self.dirty
            .push_back(("/var/log/syslog".to_string(), self.log_cursor, data));
        self.log_cursor += len;
        // Writers block (and the OS degrades) if dirty data piles up with
        // a dead disk underneath; drop oldest to bound memory, counting
        // them as lost writes.
        if self.dirty.len() > DIRTY_LIMIT {
            self.dirty.pop_front();
            self.klog.log(
                self.clock.now(),
                LogLevel::Warning,
                "dirty buffer limit reached; dropping oldest page (lost async write)",
            );
        }
        Ok(())
    }

    /// Runs the periodic daemons: page writeback (every 5 s) and the
    /// filesystem journal commit timer. Call roughly once per virtual
    /// second.
    ///
    /// On a root-filesystem journal abort the server crashes — the
    /// paper's Ubuntu failure, with the dmesg trail of buffer I/O errors
    /// leading up to it.
    pub fn tick(&mut self) -> &OsState {
        if !self.running() {
            return &self.state;
        }
        let now = self.clock.now();

        // Service supervision: every daemon does a unit of work; failed
        // daemons are restarted within their budget.
        let mut manager = std::mem::take(&mut self.services);
        let events = manager.supervise(|command| self.exec(command).is_ok());
        for event in events {
            let (level, text) = match event {
                SupervisionEvent::WorkFailed(i) => (
                    LogLevel::Error,
                    format!(
                        "systemd[1]: {}: main process exited with I/O error",
                        manager.services()[i].name
                    ),
                ),
                SupervisionEvent::Restarted(i) => (
                    LogLevel::Warning,
                    format!("systemd[1]: {}: restarted", manager.services()[i].name),
                ),
                SupervisionEvent::GaveUp(i) => (
                    LogLevel::Critical,
                    format!(
                        "systemd[1]: {}: start request repeated too quickly, giving up",
                        manager.services()[i].name
                    ),
                ),
            };
            self.klog.log(self.clock.now(), level, text);
        }
        self.services = manager;

        // Writeback daemon.
        if now.saturating_duration_since(self.last_writeback) >= self.writeback_interval {
            self.last_writeback = now;
            let mut budget = self.dirty.len();
            while budget > 0 {
                budget -= 1;
                let Some((path, offset, data)) = self.dirty.pop_front() else {
                    break;
                };
                match self.fs.write_file(&path, offset, &data) {
                    Ok(()) => {}
                    Err(FsError::JournalAborted { errno }) => {
                        self.dirty.push_front((path, offset, data));
                        self.crash(format!(
                            "journal aborted (error {errno}); root filesystem is gone"
                        ));
                        return &self.state;
                    }
                    Err(_) => {
                        self.wb_failures_total += 1;
                        let block = offset / 4096;
                        self.klog.log(
                            self.clock.now(),
                            LogLevel::Error,
                            format!(
                                "Buffer I/O error on dev sda1, logical block {block}, lost async page write"
                            ),
                        );
                        self.dirty.push_front((path, offset, data));
                        break; // retry next writeback pass
                    }
                }
            }
        }

        // Journal commit timer.
        let tick_result = self.fs.tick(now);
        // Surface any buffer I/O errors the commit path absorbed, like
        // the kernel's dmesg trail leading up to the crash.
        let errors_now = self.fs.buffer_io_errors();
        if errors_now > self.buffer_errors_seen {
            let new = errors_now - self.buffer_errors_seen;
            self.wb_failures_total += new;
            self.buffer_errors_seen = errors_now;
            self.klog.log(
                self.clock.now(),
                LogLevel::Error,
                format!("Buffer I/O error on dev sda1, lost async page write ({new} pages)"),
            );
        }
        if let Err(FsError::JournalAborted { errno }) = tick_result {
            self.klog.log(
                self.clock.now(),
                LogLevel::Critical,
                format!("EXT4-fs error (device sda1): journal has aborted (error {errno})"),
            );
            self.crash(format!(
                "attempt to access beyond end of journal; root filesystem aborted (error {errno})"
            ));
            return &self.state;
        }

        // A root filesystem that went read-only under us is fatal for a
        // server whose every service writes logs and state.
        if matches!(self.fs.state(), FsState::Aborted { .. }) {
            self.crash("root filesystem remounted read-only; all services failing");
        }
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::{FaultInjector, FaultPlan, IoError, MemDisk};

    fn server() -> (ServerOs<MemDisk>, Clock) {
        let clock = Clock::new();
        let os = ServerOs::install(MemDisk::new(1 << 17), clock.clone()).unwrap();
        (os, clock)
    }

    #[test]
    fn install_and_exec() {
        let (mut os, _) = server();
        assert!(os.running());
        let out = os.exec("ls").unwrap();
        assert!(out.contains("bin") && out.contains("var"), "{out}");
        assert!(os.exec("ps").unwrap().contains("systemd"));
        assert_eq!(os.exec("nonexistent"), Err(OsError::NotFound));
    }

    #[test]
    fn buffered_log_writes_persist_via_writeback() {
        let (mut os, clock) = server();
        os.write_log("service started").unwrap();
        os.write_log("request handled").unwrap();
        clock.advance(SimDuration::from_secs(6));
        os.tick();
        assert!(os.running());
        let content = os
            .filesystem_mut()
            .read_file("/var/log/syslog", 0, 4_096)
            .unwrap();
        let text = String::from_utf8(content).unwrap();
        assert!(
            text.contains("service started\nrequest handled\n"),
            "{text}"
        );
    }

    #[test]
    fn blocked_storage_crashes_server_with_dmesg_trail() {
        let clock = Clock::new();
        let mut os = ServerOs::install(
            FaultInjector::new(MemDisk::new(1 << 17), FaultPlan::None),
            clock.clone(),
        )
        .unwrap();
        // Warm things up, then the attack begins.
        os.write_log("healthy").unwrap();
        clock.advance(SimDuration::from_secs(6));
        os.tick();
        os.filesystem_mut()
            .device_mut()
            .set_plan(FaultPlan::FailWritesFrom {
                start: 0,
                error: IoError::NoResponse,
            });
        let t0 = clock.now();
        let mut crashed_at = None;
        for _ in 0..200 {
            os.write_log("under attack").unwrap_or(());
            clock.advance(SimDuration::from_secs(1));
            if let OsState::Crashed { at, .. } = os.tick() {
                crashed_at = Some(*at);
                break;
            }
        }
        let at = crashed_at.expect("server should crash");
        let elapsed = (at - t0).as_secs_f64();
        // Writeback failures start logging right away; the journal commit
        // blocks for its 75 s patience and the crash lands near the
        // paper's ~81 s.
        assert!((75.0..90.0).contains(&elapsed), "crashed after {elapsed}");
        assert!(os.klog().count_containing("Buffer I/O error") >= 1);
        assert!(os.klog().count_containing("journal has aborted") >= 1);
        assert!(!os.running());
        // Everything is refused after death.
        assert!(matches!(os.exec("ls"), Err(OsError::Crashed { .. })));
        assert!(matches!(os.write_log("x"), Err(OsError::Crashed { .. })));
    }

    #[test]
    fn exec_fails_with_io_error_when_cold_read_blocked() {
        let clock = Clock::new();
        let mut os = ServerOs::install(
            FaultInjector::new(MemDisk::new(1 << 17), FaultPlan::None),
            clock.clone(),
        )
        .unwrap();
        // Fail *all* I/O including reads; /bin/ls was cached during
        // install (written through the page cache), so force a cold read
        // by failing reads of a file never read before... `cat` binary was
        // also written at install and cached. To model a cold cache, we
        // drop to a fresh boot: re-mount from the device.
        let dev = {
            let fs = std::mem::replace(
                os.filesystem_mut(),
                deepnote_fs::Filesystem::format(
                    FaultInjector::new(MemDisk::new(1 << 17), FaultPlan::None),
                    clock.clone(),
                )
                .unwrap(),
            );
            fs.unmount().unwrap()
        };
        let (fs2, _) = deepnote_fs::Filesystem::mount(dev, clock.clone()).unwrap();
        *os.filesystem_mut() = fs2;
        os.filesystem_mut()
            .device_mut()
            .set_plan(FaultPlan::FailFrom {
                start: 0,
                error: IoError::NoResponse,
            });
        let err = os.exec("ls").unwrap_err();
        assert!(matches!(err, OsError::InputOutput { .. }), "{err:?}");
        assert_eq!(os.klog().count_containing("Input/output error"), 1);
        assert!(os.klog().count_containing("cannot access") > 0);
    }

    #[test]
    fn services_run_healthy_and_cascade_under_attack() {
        use crate::service::ServiceState;
        let clock = Clock::new();
        let mut os = ServerOs::install(
            FaultInjector::new(MemDisk::new(1 << 17), FaultPlan::None),
            clock.clone(),
        )
        .unwrap();
        // Healthy: every service keeps running through many ticks, with
        // enough log traffic to churn the bounded page cache.
        for i in 0..30 {
            os.write_log(&format!("healthy traffic {i} {}", "x".repeat(200)))
                .unwrap();
            clock.advance(SimDuration::from_secs(1));
            os.tick();
        }
        assert_eq!(os.services().census(), (3, 0, 0), "{:?}", os.services());

        // The attack: all I/O (reads included — cold binary reloads) dies.
        os.filesystem_mut()
            .device_mut()
            .set_plan(FaultPlan::FailFrom {
                start: 0,
                error: IoError::NoResponse,
            });
        let mut dead_seen = 0;
        for _ in 0..40 {
            let _ = os.write_log("under attack");
            clock.advance(SimDuration::from_secs(1));
            if !os.running() {
                break;
            }
            os.tick();
            let (_, _, dead) = os.services().census();
            dead_seen = dead_seen.max(dead);
        }
        // With binaries evicted by the log churn, cold re-execs fail and
        // the supervisor gives up on at least one daemon before (or as)
        // the OS dies.
        assert!(
            dead_seen > 0 || !os.running(),
            "services: {:?}, state: {:?}",
            os.services(),
            os.state()
        );
        if dead_seen > 0 {
            assert!(os.klog().count_containing("systemd[1]") > 0);
            assert!(os
                .services()
                .services()
                .iter()
                .any(|s| s.state == ServiceState::Dead || s.restarts > 0));
        }
    }

    #[test]
    fn dirty_limit_bounds_memory() {
        let (mut os, _) = server();
        for i in 0..2_000 {
            os.write_log(&format!("line {i}")).unwrap();
        }
        assert!(os.klog().count_containing("dirty buffer limit") > 0);
    }
}
