//! A systemd-like service manager.
//!
//! The paper's "crucial processes" are daemons whose binaries and state
//! live on the attacked disk. [`ServiceManager`] supervises a set of
//! services: each tick every running service does a unit of work (an
//! exec of its binary — a page-cache hit when warm, a device read when
//! evicted), failures are logged, and failed services are restarted up
//! to their policy's budget. Under a sustained attack, restarts need
//! cold reads that never complete, so services cascade into `Dead` —
//! the texture behind the paper's "inability to access all files".

use serde::{Deserialize, Serialize};

/// What to do when a service fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartPolicy {
    /// Leave it failed.
    Never,
    /// Restart, up to `max_restarts` times over the service's lifetime.
    OnFailure {
        /// Lifetime restart budget.
        max_restarts: u32,
    },
}

/// Lifecycle state of one service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceState {
    /// Healthy and doing work.
    Running,
    /// Last work unit failed; eligible for restart.
    Failed,
    /// Restart budget exhausted; requires manual intervention.
    Dead,
}

/// One supervised service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Unit name (e.g. "sshd.service").
    pub name: String,
    /// The `/bin` command this service runs.
    pub command: String,
    /// Restart policy.
    pub policy: RestartPolicy,
    /// Current state.
    pub state: ServiceState,
    /// Restarts consumed.
    pub restarts: u32,
}

/// The supervisor: a plain data structure driven by the OS tick (the OS
/// owns the filesystem; the manager only decides *what* to exec).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceManager {
    services: Vec<Service>,
}

/// A supervision decision for the OS to carry out this tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisionEvent {
    /// Service `index` failed its work unit.
    WorkFailed(usize),
    /// Service `index` was restarted successfully.
    Restarted(usize),
    /// Service `index` exhausted its restart budget.
    GaveUp(usize),
}

impl ServiceManager {
    /// An empty manager.
    pub fn new() -> Self {
        ServiceManager::default()
    }

    /// Registers a service in the `Running` state.
    ///
    /// # Panics
    ///
    /// Panics on duplicate unit names.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        command: impl Into<String>,
        policy: RestartPolicy,
    ) {
        let name = name.into();
        assert!(
            self.services.iter().all(|s| s.name != name),
            "duplicate service name: {name}"
        );
        self.services.push(Service {
            name,
            command: command.into(),
            policy,
            state: ServiceState::Running,
            restarts: 0,
        });
    }

    /// The supervised services.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// A service by name.
    pub fn service(&self, name: &str) -> Option<&Service> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Number of services in each state: `(running, failed, dead)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in &self.services {
            match s.state {
                ServiceState::Running => counts.0 += 1,
                ServiceState::Failed => counts.1 += 1,
                ServiceState::Dead => counts.2 += 1,
            }
        }
        counts
    }

    /// Runs one supervision round. `exec` attempts a unit of work (or a
    /// restart) for a command and reports success. Returns the events
    /// that occurred, in service order.
    pub fn supervise(&mut self, mut exec: impl FnMut(&str) -> bool) -> Vec<SupervisionEvent> {
        let mut events = Vec::new();
        for i in 0..self.services.len() {
            let (state, command, policy, restarts) = {
                let s = &self.services[i];
                (s.state, s.command.clone(), s.policy, s.restarts)
            };
            match state {
                ServiceState::Running => {
                    if !exec(&command) {
                        self.services[i].state = ServiceState::Failed;
                        events.push(SupervisionEvent::WorkFailed(i));
                    }
                }
                ServiceState::Failed => match policy {
                    RestartPolicy::Never => {
                        self.services[i].state = ServiceState::Dead;
                        events.push(SupervisionEvent::GaveUp(i));
                    }
                    RestartPolicy::OnFailure { max_restarts } => {
                        if restarts >= max_restarts {
                            self.services[i].state = ServiceState::Dead;
                            events.push(SupervisionEvent::GaveUp(i));
                        } else if exec(&command) {
                            self.services[i].state = ServiceState::Running;
                            self.services[i].restarts += 1;
                            events.push(SupervisionEvent::Restarted(i));
                        } else {
                            self.services[i].restarts += 1;
                            events.push(SupervisionEvent::WorkFailed(i));
                            if self.services[i].restarts >= max_restarts {
                                self.services[i].state = ServiceState::Dead;
                                events.push(SupervisionEvent::GaveUp(i));
                            }
                        }
                    }
                },
                ServiceState::Dead => {}
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> ServiceManager {
        let mut m = ServiceManager::new();
        m.register(
            "sshd.service",
            "sshd",
            RestartPolicy::OnFailure { max_restarts: 3 },
        );
        m.register("cron.service", "ps", RestartPolicy::Never);
        m
    }

    #[test]
    fn healthy_services_stay_running() {
        let mut m = manager();
        let events = m.supervise(|_| true);
        assert!(events.is_empty());
        assert_eq!(m.census(), (2, 0, 0));
    }

    #[test]
    fn failure_then_successful_restart() {
        let mut m = manager();
        let mut fail_once = true;
        m.supervise(|_| {
            let ok = !fail_once;
            fail_once = false;
            ok
        });
        assert_eq!(m.census(), (1, 1, 0)); // sshd failed, cron ran (second exec ok)
        let events = m.supervise(|_| true);
        assert!(
            events.contains(&SupervisionEvent::Restarted(0)),
            "{events:?}"
        );
        assert_eq!(m.census(), (2, 0, 0));
        assert_eq!(m.service("sshd.service").unwrap().restarts, 1);
    }

    #[test]
    fn persistent_failure_exhausts_budget() {
        let mut m = manager();
        for _ in 0..10 {
            m.supervise(|_| false);
        }
        let sshd = m.service("sshd.service").unwrap();
        assert_eq!(sshd.state, ServiceState::Dead);
        assert!(sshd.restarts >= 3);
        // Never-restart service died on first failure pass.
        assert_eq!(m.service("cron.service").unwrap().state, ServiceState::Dead);
        assert_eq!(m.census(), (0, 0, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate service")]
    fn duplicate_names_rejected() {
        let mut m = manager();
        m.register("sshd.service", "sshd", RestartPolicy::Never);
    }
}
