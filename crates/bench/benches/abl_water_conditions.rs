//! ABL-WATER: §5 "Water Conditions" — temperature/salinity/depth vs the
//! attack's open-water reach, plus attacker power.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::ablations;
use deepnote_core::report;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", report::render_water(&ablations::water_conditions()));
    println!("{}", report::render_power(&ablations::attacker_power()));

    c.bench_function("abl_water/conditions_sweep", |b| {
        b.iter(|| black_box(ablations::water_conditions()))
    });
    c.bench_function("abl_water/attacker_power", |b| {
        b.iter(|| black_box(ablations::attacker_power()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
