//! TAB1: regenerates Table 1 (FIO read/write throughput and latency vs
//! speaker distance; Scenario 2, 650 Hz, 140 dB) and times the harness.
//!
//! Paper rows: No Attack 18.0/22.7 MB/s @0.2 ms; 1–5 cm no response;
//! 10 cm 12.6/0.3; 15 cm 17.6/2.9 (write 4.0 ms); 20 cm 17.6/21.1;
//! 25 cm 18.0/22.0.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::range;
use deepnote_core::report;
use deepnote_core::testbed::Testbed;
use deepnote_structures::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", report::render_table1(&range::table1(5)));

    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    c.bench_function("tab1/full_table_7_rows", |b| {
        b.iter(|| black_box(range::table1(2)))
    });
    c.bench_function("tab1/single_row_10cm", |b| {
        b.iter(|| black_box(range::fio_row(&testbed, Some(10.0), 2)))
    });
    c.bench_function("tab1/baseline_row", |b| {
        b.iter(|| black_box(range::fio_row(&testbed, None, 2)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
