//! PERF-SUITE: tracked timings for the simulator's hot paths.
//!
//! Mirrors the `deepnote perf` subcommand inside the bench harness so
//! regressions show up in the same place as the paper benches:
//!
//! * the Table 1 range matrix on the experiment pool vs forced
//!   single-thread (`DEEPNOTE_THREADS=1`),
//! * the Figure 2 closed-form sweep,
//! * the paper campaign with the transfer-path cache on vs off,
//! * pool dispatch overhead: generic (unboxed) jobs vs the old
//!   `Box<dyn FnOnce>` calling convention through `try_run_all`.
//!
//! The last pair is the regression guard for the pool's generic API:
//! if dispatch ever forces jobs back onto the heap, `dispatch_boxed`
//! and `dispatch_generic` converge.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_acoustics::{Distance, SweepPlan};
use deepnote_cluster::prelude::*;
use deepnote_core::experiments::{frequency, range};
use deepnote_core::parallel::{try_run_all, THREADS_ENV};
use deepnote_sim::SimDuration;
use std::hint::black_box;

/// Jobs per dispatch-overhead round: enough that per-job costs dominate
/// the pool's fixed setup.
const DISPATCH_JOBS: u64 = 4096;

fn bench_matrix(c: &mut Criterion) {
    let prior = std::env::var(THREADS_ENV).ok();
    std::env::set_var(THREADS_ENV, "1");
    c.bench_function("perf_suite/tab1_matrix_single_thread", |b| {
        b.iter(|| black_box(range::table1(2)))
    });
    match prior {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    c.bench_function("perf_suite/tab1_matrix_pool", |b| {
        b.iter(|| black_box(range::table1(2)))
    });
    c.bench_function("perf_suite/fig2_sweep", |b| {
        b.iter(|| {
            black_box(frequency::figure2(
                Distance::from_cm(1.0),
                &SweepPlan::paper_sweep(),
            ))
        })
    });
}

fn bench_campaign_cache(c: &mut Criterion) {
    let cached = CampaignConfig::paper_duel(PlacementPolicy::Separated, SimDuration::from_secs(30));
    let mut uncached = cached.clone();
    uncached.transfer_cache = false;
    c.bench_function("perf_suite/campaign_transfer_cache_on", |b| {
        b.iter(|| black_box(run_campaign(&cached).expect("campaign run")))
    });
    c.bench_function("perf_suite/campaign_transfer_cache_off", |b| {
        b.iter(|| black_box(run_campaign(&uncached).expect("campaign run")))
    });
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    c.bench_function("perf_suite/dispatch_generic", |b| {
        b.iter(|| {
            let jobs: Vec<_> = (0..DISPATCH_JOBS)
                .map(|i| move || i.wrapping_mul(2_654_435_761) ^ (i >> 3))
                .collect();
            black_box(try_run_all(jobs))
        })
    });
    c.bench_function("perf_suite/dispatch_boxed", |b| {
        b.iter(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..DISPATCH_JOBS)
                .map(|i| {
                    Box::new(move || i.wrapping_mul(2_654_435_761) ^ (i >> 3))
                        as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            black_box(try_run_all(jobs))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matrix, bench_campaign_cache, bench_dispatch_overhead
}
criterion_main!(benches);
