//! ABL-STEALTH: duty-cycled attacks vs the latency-anomaly detector —
//! the §3 "controlled throughput loss" objective, quantified against a
//! defender.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::stealth;
use deepnote_core::testbed::Testbed;
use deepnote_structures::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    println!(
        "\n{}",
        stealth::render(&stealth::duty_cycle_sweep(&testbed))
    );
    c.bench_function("abl_stealth/duty_cycle_sweep", |b| {
        b.iter(|| black_box(stealth::duty_cycle_sweep(&testbed)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
