//! ABL-TOLERANCE: sensitivity of the dead bands to the read/write
//! off-track thresholds — the mechanism behind Fig. 2's asymmetry.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::ablations;
use deepnote_core::report;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "\n{}",
        report::render_tolerance(&ablations::tolerance_sensitivity())
    );
    c.bench_function("abl_tolerance/sweep", |b| {
        b.iter(|| black_box(ablations::tolerance_sensitivity()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
