//! ABL-MATERIAL: §5 "Data Center Structure" — enclosure material and
//! wall thickness vs attack effect.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::ablations;
use deepnote_core::report;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", report::render_materials(&ablations::materials()));
    c.bench_function("abl_materials/sweep", |b| {
        b.iter(|| black_box(ablations::materials()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
