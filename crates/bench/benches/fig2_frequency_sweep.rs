//! FIG2: regenerates Figure 2 (sequential write / read throughput vs
//! attack frequency, Scenarios 1–3) and times the sweep harness.
//!
//! Paper shape to reproduce: throughput losses across ~300 Hz–1.7 kHz in
//! all scenarios; writes die over a wider band than reads; the metal
//! container's (Scenario 3) bands end lower (~1.3 kHz writes, ~800 Hz
//! reads).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_acoustics::{Distance, SweepPlan};
use deepnote_core::experiments::frequency;
use deepnote_core::report;
use std::hint::black_box;

fn print_figure_once() {
    let sweeps = frequency::figure2(Distance::from_cm(1.0), &SweepPlan::paper_sweep());
    println!("\n{}", report::render_figure2(&sweeps));
    for sweep in &sweeps {
        let min_w = sweep.write.min_point().unwrap();
        let min_r = sweep.read.min_point().unwrap();
        println!(
            "  {}: write minimum {:.1} MB/s @ {:.0} Hz, read minimum {:.1} MB/s @ {:.0} Hz",
            sweep.scenario, min_w.1, min_w.0, min_r.1, min_r.0
        );
    }
    println!("  paper: all scenarios lose throughput in 300 Hz–1.7 kHz; S3 writes 0 over 300–1300 Hz, reads over 300–800 Hz\n");
}

fn bench(c: &mut Criterion) {
    print_figure_once();
    let plan = SweepPlan::paper_sweep();
    c.bench_function("fig2/full_sweep_3_scenarios", |b| {
        b.iter(|| black_box(frequency::figure2(Distance::from_cm(1.0), &plan)))
    });
    c.bench_function("fig2/single_measured_point_650hz", |b| {
        b.iter(|| {
            black_box(frequency::measure_point(
                deepnote_structures::Scenario::PlasticTower,
                deepnote_acoustics::Frequency::from_hz(650.0),
                Distance::from_cm(1.0),
                1,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
