//! TAB2: regenerates Table 2 (RocksDB `readwhilewriting` throughput and
//! I/O rate vs speaker distance; Scenario 2, 650 Hz) and times the
//! harness.
//!
//! Paper rows: No Attack 8.7 MB/s & 1.1×100k ops/s; 1–10 cm zero;
//! 15 cm 3.7 & 0.9; 20–25 cm 8.6 & 1.1.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::range;
use deepnote_core::report;
use deepnote_core::testbed::Testbed;
use deepnote_kv::bench::BenchSpec;
use deepnote_sim::SimDuration;
use deepnote_structures::Scenario;
use std::hint::black_box;

fn quick_spec() -> BenchSpec {
    BenchSpec {
        num_keys: 5_000,
        duration: SimDuration::from_secs(3),
        ..BenchSpec::default()
    }
}

fn bench(c: &mut Criterion) {
    println!(
        "\n{}",
        report::render_table2(&range::table2(&range::quick_kv_spec()))
    );

    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let spec = quick_spec();
    c.bench_function("tab2/full_table_7_rows", |b| {
        b.iter(|| black_box(range::table2(&spec)))
    });
    c.bench_function("tab2/baseline_row", |b| {
        b.iter(|| black_box(range::kv_row(&testbed, None, &spec)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
