//! ABL-ADAPTIVE: the §3 remote attacker — frequency discovery from
//! observed latency, plus the redundancy and spectrum studies.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_acoustics::{Distance, Frequency, SweepPlan};
use deepnote_core::experiments::{ablations, adaptive, redundancy};
use deepnote_core::testbed::Testbed;
use deepnote_structures::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);

    let discovery = adaptive::remote_frequency_discovery(
        &testbed,
        Distance::from_cm(1.0),
        &SweepPlan::paper_sweep(),
        6,
    );
    println!(
        "\nadaptive attacker: band {:?}, best {:?} Hz, baseline {:.2} ms",
        discovery.vulnerable_band(),
        discovery.best_frequency_hz,
        discovery.baseline_latency_ms
    );
    println!("\n{}", redundancy::render(&redundancy::mirror_study()));
    for row in ablations::noise_vs_tone() {
        println!(
            "  {:<42} displacement {:>7.1} nm, write {:>5.1} MB/s",
            row.label, row.displacement_nm, row.write_mb_s
        );
    }

    let quick_plan = SweepPlan::new(
        Frequency::from_hz(100.0),
        Frequency::from_khz(4.0),
        Frequency::from_hz(200.0),
        Frequency::from_hz(50.0),
    );
    c.bench_function("abl_adaptive/remote_discovery_quick", |b| {
        b.iter(|| {
            black_box(adaptive::remote_frequency_discovery(
                &testbed,
                Distance::from_cm(1.0),
                &quick_plan,
                4,
            ))
        })
    });
    c.bench_function("abl_adaptive/redundancy_study", |b| {
        b.iter(|| black_box(redundancy::mirror_study()))
    });
    c.bench_function("abl_adaptive/noise_vs_tone", |b| {
        b.iter(|| black_box(ablations::noise_vs_tone()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
