//! ABL-TELEMETRY: what observability costs — the same attack campaign
//! with telemetry disabled, with full tracing, and with tracing plus
//! metrics scraping, so "zero overhead when disabled" is a measured
//! number, not a slogan.
//!
//! Before timing anything, the bench proves the disabled-telemetry run
//! produces the same report as a config that never mentions telemetry
//! at all, and that a traced run leaves the campaign results untouched.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_cluster::prelude::*;
use deepnote_sim::SimDuration;
use std::hint::black_box;

fn base_config() -> CampaignConfig {
    let mut c = CampaignConfig::paper_duel(PlacementPolicy::CoLocated, SimDuration::from_secs(30));
    c.workload.num_keys = 240;
    c.workload.clients = 4;
    c
}

fn traced_config() -> CampaignConfig {
    let mut c = base_config();
    c.telemetry.trace = true;
    c
}

fn scraped_config() -> CampaignConfig {
    let mut c = traced_config();
    c.telemetry.metrics_interval = Some(SimDuration::from_millis(100));
    c
}

fn bench(c: &mut Criterion) {
    // Correctness gate: disabled telemetry is the default, and enabling
    // it must not change what the campaign reports.
    let baseline = run_campaign(&base_config()).expect("campaign");
    let traced = run_campaign(&traced_config()).expect("campaign");
    assert_eq!(
        baseline.render(),
        traced.render(),
        "tracing perturbed the campaign"
    );
    assert!(traced.trace.is_some(), "traced run recorded no trace");
    println!(
        "\ntrace: {} events; alerts: {} transitions\n",
        traced.trace.as_ref().map_or(0, |t| t.events.len()),
        traced.alerts.len()
    );
    let disabled = base_config();
    let tracing = traced_config();
    let scraping = scraped_config();
    c.bench_function("abl_telemetry/campaign_disabled", |b| {
        b.iter(|| black_box(run_campaign(&disabled)))
    });
    c.bench_function("abl_telemetry/campaign_traced", |b| {
        b.iter(|| black_box(run_campaign(&tracing)))
    });
    c.bench_function("abl_telemetry/campaign_traced_and_scraped", |b| {
        b.iter(|| black_box(run_campaign(&scraping)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
