//! TAB3: regenerates Table 3 (time to crash for Ext4, Ubuntu server, and
//! RocksDB under the sustained best attack) and times each victim's
//! crash harness.
//!
//! Paper rows: Ext4 80.0 s, Ubuntu 81.0 s, RocksDB 81.3 s.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::experiments::crash;
use deepnote_core::report;
use deepnote_core::testbed::Testbed;
use deepnote_structures::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", report::render_table3(&crash::table3()));

    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    c.bench_function("tab3/ext4_crash", |b| {
        b.iter(|| black_box(crash::ext4_crash(&testbed)))
    });
    c.bench_function("tab3/ubuntu_crash", |b| {
        b.iter(|| black_box(crash::ubuntu_crash(&testbed)))
    });
    c.bench_function("tab3/rocksdb_crash", |b| {
        b.iter(|| black_box(crash::rocksdb_crash(&testbed)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
