//! Microbenchmarks of the substrate itself: how fast does the simulation
//! run per simulated second? Useful when extending the models.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_blockdev::{BlockDevice, HddDisk, MemDisk};
use deepnote_fs::Filesystem;
use deepnote_kv::{bench as kvbench, Db};
use deepnote_sim::{Clock, SimDuration};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("stack/hdd_1000_seq_writes", |b| {
        b.iter(|| {
            let clock = Clock::new();
            let mut disk = HddDisk::barracuda_500gb(clock.clone());
            let buf = vec![0u8; 4096];
            for i in 0..1000u64 {
                disk.write_blocks(i * 8, &buf).unwrap();
            }
            black_box(clock.now())
        })
    });
    c.bench_function("stack/fs_create_write_commit", |b| {
        b.iter(|| {
            let clock = Clock::new();
            let mut fs = Filesystem::format(MemDisk::new(1 << 16), clock).unwrap();
            fs.create_file("/f").unwrap();
            fs.write_file("/f", 0, &[7u8; 8192]).unwrap();
            fs.commit().unwrap();
            black_box(fs.stats())
        })
    });
    c.bench_function("stack/kv_1000_puts", |b| {
        b.iter(|| {
            let clock = Clock::new();
            let mut db = Db::create(MemDisk::new(1 << 18), clock).unwrap();
            let spec = kvbench::BenchSpec::default();
            for i in 0..1000 {
                db.put(&spec.key(i), &spec.value(i)).unwrap();
            }
            black_box(db.stats())
        })
    });
    c.bench_function("stack/kv_rww_1s_virtual", |b| {
        b.iter(|| {
            let clock = Clock::new();
            let mut db = Db::create(MemDisk::new(1 << 20), clock).unwrap();
            let spec = kvbench::BenchSpec {
                num_keys: 2_000,
                duration: SimDuration::from_secs(1),
                ..Default::default()
            };
            kvbench::fill_seq(&mut db, &spec).unwrap();
            black_box(kvbench::read_while_writing(&mut db, &spec))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
