//! ABL-CLUSTER: replicated-service availability under attack — the full
//! campaign event loop (quorum serving, failure detection, failover,
//! re-replication) for both placement policies.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_cluster::prelude::*;
use deepnote_sim::SimDuration;
use std::hint::black_box;

fn short_duel(placement: PlacementPolicy) -> CampaignConfig {
    let mut c = CampaignConfig::paper_duel(placement, SimDuration::from_secs(30));
    c.workload.num_keys = 240;
    c.workload.clients = 4;
    c
}

fn bench(c: &mut Criterion) {
    let reports: Vec<_> = run_matrix(vec![
        short_duel(PlacementPolicy::Separated),
        short_duel(PlacementPolicy::CoLocated),
    ])
    .into_iter()
    .map(|r| r.expect("campaign run"))
    .collect();
    println!("\n{}", render_duel(&reports));
    for placement in [PlacementPolicy::Separated, PlacementPolicy::CoLocated] {
        let config = short_duel(placement);
        c.bench_function(
            &format!("abl_cluster/campaign_{}", placement.label()),
            |b| b.iter(|| black_box(run_campaign(&config))),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
