//! ABL-DEFENSE: §5 "In-air Defenses" — liner, dampers, augmented servo,
//! and their thermal cost.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_core::defense;
use deepnote_core::report;
use deepnote_core::testbed::Testbed;
use deepnote_structures::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    println!(
        "\n{}",
        report::render_defenses(&defense::evaluate_catalog(&testbed))
    );
    c.bench_function("abl_defenses/catalog", |b| {
        b.iter(|| black_box(defense::evaluate_catalog(&testbed)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
