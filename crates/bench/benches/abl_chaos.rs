//! ABL-CHAOS: what the defense stack costs — the same chaos campaign
//! with and without end-to-end checksums, scrubbing, read repair, and
//! the resilient client, so the overhead of integrity is a number, not
//! a guess.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use deepnote_cluster::prelude::*;
use deepnote_sim::SimDuration;
use std::hint::black_box;

fn short_pair() -> (CampaignConfig, CampaignConfig) {
    let (mut hardened, mut naive) = CampaignConfig::chaos_pair(
        PlacementPolicy::Separated,
        SimDuration::from_secs(30),
        &ChaosProfile::full(),
    );
    for c in [&mut hardened, &mut naive] {
        c.workload.num_keys = 240;
        c.workload.clients = 4;
    }
    (hardened, naive)
}

fn bench(c: &mut Criterion) {
    let (hardened, naive) = short_pair();
    let reports: Vec<_> = run_matrix(vec![hardened.clone(), naive.clone()])
        .into_iter()
        .map(|r| r.expect("campaign run"))
        .collect();
    println!("\n{}", render_duel(&reports));
    c.bench_function("abl_chaos/campaign_hardened", |b| {
        b.iter(|| black_box(run_campaign(&hardened)))
    });
    c.bench_function("abl_chaos/campaign_naive", |b| {
        b.iter(|| black_box(run_campaign(&naive)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
