//! Bench host crate. The benches in `benches/` regenerate the paper's
//! tables and figures (printing the rows/series once) and let Criterion
//! time the harness itself. See DESIGN.md for the experiment index.
