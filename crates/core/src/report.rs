//! Render experiment results as the paper's tables.

use crate::defense::DefenseOutcome;
use crate::experiments::ablations::{MaterialRow, PowerRow, ToleranceRow, WaterRow};
use crate::experiments::crash::CrashRow;
use crate::experiments::frequency::FrequencySweep;
use crate::experiments::range::{FioRangeRow, KvRangeRow};

fn latency_cell(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.1}"),
        None => "-".to_string(),
    }
}

/// Renders Table 1 ("Read and Write operations throughput of HDD when an
/// acoustic attack occurs at varied distances").
pub fn render_table1(rows: &[FioRangeRow]) -> String {
    let mut out = String::from(
        "Table 1: FIO throughput/latency vs distance (Scenario 2, 650 Hz, 140 dB)\n\
         Distance    | Read MB/s | Write MB/s | Read lat ms | Write lat ms\n\
         ------------+-----------+------------+-------------+-------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} | {:>9.1} | {:>10.1} | {:>11} | {:>12}\n",
            r.label,
            r.read_mb_s,
            r.write_mb_s,
            latency_cell(r.read_latency_ms),
            latency_cell(r.write_latency_ms),
        ));
    }
    out
}

/// Renders Table 2 ("Throughput and I/O rate of RocksDB …").
pub fn render_table2(rows: &[KvRangeRow]) -> String {
    let mut out = String::from(
        "Table 2: RocksDB readwhilewriting vs distance (Scenario 2, 650 Hz)\n\
         Distance    | Throughput MB/s | I/O Rate (x100,000 ops/s)\n\
         ------------+-----------------+--------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} | {:>15.1} | {:>24.1}\n",
            r.label, r.throughput_mb_s, r.io_rate_x100k
        ));
    }
    out
}

/// Renders Table 3 ("Crashes in real-world applications").
pub fn render_table3(rows: &[CrashRow]) -> String {
    let mut out = String::from(
        "Table 3: Crashes in real-world applications (Scenario 2, 650 Hz, 1 cm)\n\
         Application | Description           | Time to Crash | Error\n\
         ------------+-----------------------+---------------+------\n",
    );
    for r in rows {
        let ttc = match r.time_to_crash_s {
            Some(t) => format!("{t:.1} seconds"),
            None => "survived".to_string(),
        };
        out.push_str(&format!(
            "{:<11} | {:<21} | {:<13} | {}\n",
            r.application, r.description, ttc, r.error
        ));
    }
    out
}

/// Renders a Figure 2 sweep as an ASCII summary (band edges + minima).
pub fn render_figure2(sweeps: &[FrequencySweep]) -> String {
    let mut out = String::from("Figure 2: throughput vs attack frequency (speaker at 1 cm)\n");
    for sweep in sweeps {
        let wband = sweep
            .write_dead_band(1.0)
            .map(|(lo, hi)| format!("{lo:.0}-{hi:.0} Hz"))
            .unwrap_or_else(|| "none".to_string());
        let rband = sweep
            .read_dead_band(1.0)
            .map(|(lo, hi)| format!("{lo:.0}-{hi:.0} Hz"))
            .unwrap_or_else(|| "none".to_string());
        out.push_str(&format!(
            "  {}: write-dead band {wband}, read-dead band {rband}\n",
            sweep.scenario
        ));
    }
    out
}

/// Renders the water-conditions ablation.
pub fn render_water(rows: &[WaterRow]) -> String {
    let mut out =
        String::from("Ablation: water conditions vs blackout range (military projector, 650 Hz)\n");
    for r in rows {
        let range = match r.blackout_range_m {
            Some(m) => format!("{m:.1} m"),
            None => "out of reach".to_string(),
        };
        out.push_str(&format!(
            "  {:<34} c={:6.1} m/s  α={:8.5} dB/km  reach={range}\n",
            r.label, r.sound_speed_m_s, r.absorption_db_km
        ));
    }
    out
}

/// Renders the materials ablation.
pub fn render_materials(rows: &[MaterialRow]) -> String {
    let mut out = String::from("Ablation: enclosure material vs attack effect (650 Hz, 1 cm)\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<34} {:6.1} kg/m²  write={:5.1} MB/s  blackout={}\n",
            r.label, r.surface_mass_kg_m2, r.write_mb_s_under_attack, r.blackout
        ));
    }
    out
}

/// Renders the tolerance ablation.
pub fn render_tolerance(rows: &[ToleranceRow]) -> String {
    let mut out =
        String::from("Ablation: off-track tolerances vs dead-band width (Scenario 2, 1 cm)\n");
    for r in rows {
        out.push_str(&format!(
            "  read {:>4.0}% / write {:>4.0}% of pitch: write-dead {:>6.0} Hz, read-dead {:>6.0} Hz\n",
            r.read_fraction * 100.0,
            r.write_fraction * 100.0,
            r.write_dead_band_hz,
            r.read_dead_band_hz
        ));
    }
    out
}

/// Renders the attacker-power ablation.
pub fn render_power(rows: &[PowerRow]) -> String {
    let mut out = String::from("Ablation: attacker source level vs open-water blackout range\n");
    for r in rows {
        let range = match r.blackout_range_m {
            Some(m) => format!("{m:.1} m"),
            None => "no blackout at any range".to_string(),
        };
        out.push_str(&format!(
            "  {:<34} SL={:5.1} dB re 1µPa  reach={range}\n",
            r.label, r.source_level_db
        ));
    }
    out
}

/// Renders the defense catalog evaluation.
pub fn render_defenses(rows: &[DefenseOutcome]) -> String {
    let mut out = String::from("Defense evaluation (attack: Scenario 2, 650 Hz, 140 dB)\n");
    for r in rows {
        let reach = match r.blackout_reach_cm {
            Some(cm) => format!("{cm:.0} cm"),
            None => "none".to_string(),
        };
        out.push_str(&format!(
            "  {:<38} write@1cm={:5.1} MB/s  blackout reach={:<7} cooling +{:.1}°C\n",
            r.label, r.write_mb_s_at_paper_point, reach, r.cooling_penalty_c
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_render_contains_dash_for_no_response() {
        let rows = vec![
            FioRangeRow {
                label: "No Attack".into(),
                read_mb_s: 18.0,
                write_mb_s: 22.7,
                read_latency_ms: Some(0.2),
                write_latency_ms: Some(0.2),
            },
            FioRangeRow {
                label: "1 cm".into(),
                read_mb_s: 0.0,
                write_mb_s: 0.0,
                read_latency_ms: None,
                write_latency_ms: None,
            },
        ];
        let text = render_table1(&rows);
        assert!(text.contains("No Attack"), "{text}");
        assert!(text.contains("22.7"), "{text}");
        assert!(text.contains('-'), "{text}");
    }

    #[test]
    fn table3_render_shows_seconds() {
        let rows = vec![CrashRow {
            application: "Ext4".into(),
            description: "Journaling filesystem".into(),
            time_to_crash_s: Some(80.0),
            error: "journal has aborted (JBD error -5); filesystem read-only".into(),
        }];
        let text = render_table3(&rows);
        assert!(text.contains("80.0 seconds"), "{text}");
        assert!(text.contains("JBD error -5"), "{text}");
    }
}
