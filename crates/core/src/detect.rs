//! Defender-side attack detection.
//!
//! The paper's §5 asks for defenses; before a data center can react
//! (failover, acoustic countermeasures, dispatching a diver) it must
//! *notice* the attack. [`AttackDetector`] watches the per-request
//! latency/error stream a storage node already has and raises an alarm
//! on the signature acoustic interference leaves: a burst of timeouts
//! and order-of-magnitude latency inflation, sustained across a window.

use deepnote_sim::OnlineStats;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Samples used to learn the healthy baseline.
    pub calibration_samples: usize,
    /// Sliding-window length (requests).
    pub window: usize,
    /// Latency multiple (vs baseline mean) considered anomalous.
    pub latency_factor: f64,
    /// Fraction of the window that must be anomalous to alarm.
    pub alarm_fraction: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            calibration_samples: 64,
            window: 32,
            latency_factor: 8.0,
            alarm_fraction: 0.5,
        }
    }
}

/// Detector verdict after each observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Still learning the healthy baseline.
    Calibrating,
    /// Traffic looks healthy.
    Normal,
    /// Some anomalous samples in the window, below the alarm threshold.
    Suspicious,
    /// Sustained anomaly: raise the alarm.
    UnderAttack,
}

/// A sliding-window latency/error anomaly detector.
///
/// # Example
///
/// ```
/// use deepnote_core::detect::{AttackDetector, Verdict};
///
/// let mut d = AttackDetector::with_defaults();
/// for _ in 0..64 {
///     d.observe(Some(0.2)); // healthy 0.2 ms requests
/// }
/// assert_eq!(d.observe(Some(0.2)), Verdict::Normal);
/// // The attack starts: timeouts.
/// let mut verdict = Verdict::Normal;
/// for _ in 0..32 {
///     verdict = d.observe(None);
/// }
/// assert_eq!(verdict, Verdict::UnderAttack);
/// ```
#[derive(Debug, Clone)]
pub struct AttackDetector {
    config: DetectorConfig,
    baseline: OnlineStats,
    window: VecDeque<bool>,
    anomalies_in_window: usize,
    alarms: u64,
}

impl AttackDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero windows, factors ≤ 1,
    /// fractions outside (0, 1]).
    pub fn new(config: DetectorConfig) -> Self {
        assert!(config.calibration_samples > 0, "need calibration samples");
        assert!(config.window > 0, "window must be non-empty");
        assert!(config.latency_factor > 1.0, "latency factor must exceed 1");
        assert!(
            config.alarm_fraction > 0.0 && config.alarm_fraction <= 1.0,
            "alarm fraction must be in (0, 1]"
        );
        AttackDetector {
            config,
            baseline: OnlineStats::new(),
            window: VecDeque::with_capacity(config.window),
            anomalies_in_window: 0,
            alarms: 0,
        }
    }

    /// A detector with [`DetectorConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(DetectorConfig::default())
    }

    /// The learned healthy mean latency (ms), once calibrated.
    pub fn baseline_ms(&self) -> Option<f64> {
        (self.baseline.count() >= self.config.calibration_samples as u64)
            .then(|| self.baseline.mean())
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Feeds one request observation: `Some(latency_ms)` for a completed
    /// request, `None` for a timeout/error. Returns the current verdict.
    pub fn observe(&mut self, latency_ms: Option<f64>) -> Verdict {
        // Calibration phase: learn from completed requests only.
        if self.baseline.count() < self.config.calibration_samples as u64 {
            if let Some(ms) = latency_ms {
                self.baseline.record(ms);
            }
            return Verdict::Calibrating;
        }
        let threshold = self.baseline.mean() * self.config.latency_factor;
        let anomalous = match latency_ms {
            None => true,
            Some(ms) => ms > threshold,
        };
        if self.window.len() == self.config.window && self.window.pop_front() == Some(true) {
            self.anomalies_in_window -= 1;
        }
        self.window.push_back(anomalous);
        if anomalous {
            self.anomalies_in_window += 1;
        }

        let frac = self.anomalies_in_window as f64 / self.config.window as f64;
        if frac >= self.config.alarm_fraction && self.window.len() == self.config.window {
            self.alarms += 1;
            Verdict::UnderAttack
        } else if self.anomalies_in_window > 0 {
            Verdict::Suspicious
        } else {
            Verdict::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use crate::threat::AttackParams;
    use deepnote_blockdev::{BlockDevice, HddDisk};
    use deepnote_sim::{Clock, SimRng};
    use deepnote_structures::Scenario;

    #[test]
    fn calibrates_then_reports_normal() {
        let mut d = AttackDetector::with_defaults();
        for _ in 0..63 {
            assert_eq!(d.observe(Some(0.2)), Verdict::Calibrating);
        }
        d.observe(Some(0.2)); // 64th completes calibration
        assert_eq!(d.observe(Some(0.25)), Verdict::Normal);
        assert!((d.baseline_ms().unwrap() - 0.2).abs() < 0.01);
    }

    #[test]
    fn healthy_jitter_does_not_alarm() {
        let mut d = AttackDetector::with_defaults();
        let mut rng = SimRng::seeded(11);
        for _ in 0..64 {
            d.observe(Some(0.18 + 0.06 * rng.unit_f64()));
        }
        let mut worst = Verdict::Normal;
        for _ in 0..500 {
            let v = d.observe(Some(0.18 + 0.08 * rng.unit_f64()));
            if v == Verdict::UnderAttack {
                worst = v;
            }
        }
        assert_ne!(worst, Verdict::UnderAttack);
        assert_eq!(d.alarms(), 0);
    }

    #[test]
    fn single_glitch_is_only_suspicious() {
        let mut d = AttackDetector::with_defaults();
        for _ in 0..64 {
            d.observe(Some(0.2));
        }
        assert_eq!(d.observe(None), Verdict::Suspicious);
        // Back to normal traffic: the glitch ages out of the window.
        let mut last = Verdict::Suspicious;
        for _ in 0..40 {
            last = d.observe(Some(0.2));
        }
        assert_eq!(last, Verdict::Normal);
    }

    #[test]
    fn detects_a_real_acoustic_attack_quickly() {
        // End-to-end: the detector sits on a storage node's request
        // stream; the paper's attack must be flagged within a window.
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        let vibration = disk.vibration();
        let mut d = AttackDetector::with_defaults();

        let request = |disk: &mut HddDisk, cursor: &mut u64| -> Option<f64> {
            let start = disk.drive().clock().now();
            let lba = (*cursor * 8) % (1 << 16);
            *cursor += 1;
            let ok = disk.write_blocks(lba, &vec![0u8; 4096]).is_ok();
            let end = disk.drive().clock().now();
            ok.then(|| (end - start).as_millis_f64())
        };

        let mut cursor = 0;
        for _ in 0..80 {
            d.observe(request(&mut disk, &mut cursor));
        }
        assert!(d.baseline_ms().is_some());

        testbed.mount_attack(&vibration, AttackParams::paper_best());
        let mut detected_after = None;
        for i in 0..64 {
            if d.observe(request(&mut disk, &mut cursor)) == Verdict::UnderAttack {
                detected_after = Some(i + 1);
                break;
            }
        }
        let n = detected_after.expect("attack must be detected");
        // Alarm within one window of requests (32 × ~200 ms of burned
        // time ≈ seconds of virtual time — long before the 81 s crash).
        assert!(n <= 32, "detected after {n} requests");
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn bad_config_rejected() {
        AttackDetector::new(DetectorConfig {
            latency_factor: 0.5,
            ..DetectorConfig::default()
        });
    }
}
