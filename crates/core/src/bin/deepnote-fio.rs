//! `deepnote-fio`: run an fio-style job file against the simulated
//! victim drive, optionally under acoustic attack.
//!
//! ```text
//! deepnote-fio <jobfile> [--attack-hz F] [--distance-cm D] [--scenario 1|2|3]
//! deepnote-fio --inline "rw=write bs=4k runtime=5" [...]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_acoustics::{Distance, Frequency};
use deepnote_blockdev::HddDisk;
use deepnote_core::testbed::Testbed;
use deepnote_iobench::{parse_jobfile, run_job};
use deepnote_sim::Clock;
use deepnote_structures::Scenario;
use std::process::ExitCode;

const USAGE: &str = "\
deepnote-fio — run fio job files against the simulated underwater drive

USAGE:
  deepnote-fio <jobfile> [flags]
  deepnote-fio --inline \"rw=write bs=4k runtime=5\" [flags]

FLAGS:
  --attack-hz F      transmit a tone at F Hz during the run
  --distance-cm D    speaker distance (default 1)
  --scenario N       1 = plastic/floor, 2 = plastic/tower (default), 3 = metal/tower
";

/// Parsed command line: the optional job-file path plus `--flag value` pairs.
type ParsedArgs = (Option<String>, Vec<(String, String)>);

fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut file = None;
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            flags.push((name.to_string(), value.clone()));
        } else if file.is_none() {
            file = Some(a.clone());
        } else {
            return Err(format!("unexpected argument: {a}"));
        }
    }
    Ok((file, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let (file, flags) = match parse_flags(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Job text: from file or --inline (space-separated key=value pairs).
    let text = if let Some(inline) = flag(&flags, "inline") {
        let body: String = inline
            .split_whitespace()
            .map(|kv| format!("{kv}\n"))
            .collect();
        format!("[inline]\n{body}")
    } else if let Some(path) = file {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("error: no job file given\n\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let jobs = match parse_jobfile(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: job file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scenario = match flag(&flags, "scenario").unwrap_or("2") {
        "1" => Scenario::PlasticDirect,
        "2" => Scenario::PlasticTower,
        "3" => Scenario::MetalTower,
        other => {
            eprintln!("error: bad --scenario {other} (expected 1, 2 or 3)");
            return ExitCode::FAILURE;
        }
    };
    let attack_hz: Option<f64> = match flag(&flags, "attack-hz").map(str::parse).transpose() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: bad --attack-hz");
            return ExitCode::FAILURE;
        }
    };
    let distance_cm: f64 = match flag(&flags, "distance-cm").unwrap_or("1").parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: bad --distance-cm");
            return ExitCode::FAILURE;
        }
    };

    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    println!("device: {}", disk.drive().geometry().name());
    if let Some(hz) = attack_hz {
        let testbed = Testbed::paper_default(scenario);
        let v = testbed.vibration_at(Frequency::from_hz(hz), Distance::from_cm(distance_cm));
        println!(
            "attack: {hz} Hz at {distance_cm} cm ({scenario}) -> chassis {:.0} nm",
            v.displacement_nm()
        );
        disk.vibration().set(Some(v));
    }

    for job in &jobs {
        let report = run_job(job, &mut disk, &clock);
        println!("\n{report}");
    }
    ExitCode::SUCCESS
}
