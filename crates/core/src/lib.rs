//! **Deep Note**: can acoustic interference damage the availability of
//! hard disk storage in underwater data centers?
//!
//! This crate is the top of the reproduction stack: it assembles the
//! physics ([`deepnote_acoustics`], [`deepnote_structures`]), the victim
//! drive ([`deepnote_hdd`], [`deepnote_blockdev`]), and the software
//! victims ([`deepnote_fs`], [`deepnote_kv`], [`deepnote_os`]) into the
//! paper's testbed, and provides a harness for every experiment in the
//! paper's evaluation:
//!
//! | Paper artifact | Harness |
//! |---|---|
//! | Fig. 2 (throughput vs frequency, 3 scenarios) | [`experiments::frequency`] |
//! | Table 1 (FIO throughput/latency vs distance)  | [`experiments::range`] |
//! | Table 2 (RocksDB throughput/IO rate vs distance) | [`experiments::range`] |
//! | Table 3 (application time-to-crash) | [`experiments::crash`] |
//! | §5 ablations (water, materials, defenses, tolerances) | [`experiments::ablations`], [`defense`] |
//!
//! # Quickstart
//!
//! ```
//! use deepnote_core::prelude::*;
//!
//! // The paper's Scenario 2 testbed with the AQ339 speaker at 650 Hz.
//! let testbed = Testbed::paper_default(Scenario::PlasticTower);
//! let params = AttackParams::paper_best();
//!
//! // What does the victim drive feel at 1 cm?
//! let vibration = testbed.vibration_at(params.frequency, params.distance);
//! assert!(vibration.displacement_nm() > 100.0); // enough to kill I/O
//! ```

// Not a serving-path crate (see DESIGN.md §7): experiment harnesses run
// on a healthy stack by construction, so setup failures (mkfs on a
// fresh disk, opening a fresh DB) abort the experiment rather than
// plumb Results through every table generator.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod defense;
pub mod detect;
pub mod experiments;
pub mod fleet;
pub mod parallel;
pub mod report;
pub mod testbed;
pub mod threat;

pub use defense::{Defense, DefenseOutcome};
pub use detect::{AttackDetector, DetectorConfig, Verdict};
pub use fleet::{Fleet, FleetReport};
pub use testbed::Testbed;
pub use threat::{AttackObjective, AttackParams, Attacker};

/// Convenience re-exports: everything needed to script an attack study.
pub mod prelude {
    pub use crate::defense::{Defense, DefenseOutcome};
    pub use crate::detect::{AttackDetector, DetectorConfig, Verdict};
    pub use crate::experiments;
    pub use crate::fleet::{Fleet, FleetReport};
    pub use crate::testbed::Testbed;
    pub use crate::threat::{AttackObjective, AttackParams, Attacker};
    pub use deepnote_acoustics::prelude::*;
    pub use deepnote_blockdev::{BlockDevice, HddDisk};
    pub use deepnote_hdd::prelude::*;
    pub use deepnote_sim::{Clock, SimDuration, SimTime};
    pub use deepnote_structures::prelude::*;
}
