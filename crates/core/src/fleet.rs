//! A rack of victims: how much of a data-center deployment does one
//! speaker take out?
//!
//! The paper attacks a single drive; an operator cares about blast
//! radius. [`Fleet`] places several drives at increasing distances from
//! the sound source (a column of enclosures, or one enclosure with a deep
//! rack) and classifies each drive's state under a given attack.

use crate::parallel::run_chunked;
use crate::testbed::Testbed;
use crate::threat::AttackParams;
use deepnote_acoustics::Distance;
use deepnote_hdd::{
    steady_state, DiskOpKind, DriveGeometry, ServoModel, TimingModel, ToleranceModel,
};
use serde::{Deserialize, Serialize};

/// Impact classification for one drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impact {
    /// No measurable effect (≥ 95 % of baseline write throughput).
    Unaffected,
    /// Degraded but serving.
    Degraded,
    /// Not serving I/O.
    Blackout,
}

impl Impact {
    /// The unaffected cut: at least this fraction of the quiet baseline.
    pub const UNAFFECTED_FRACTION: f64 = 0.95;

    /// Classifies a drive from its responsiveness and write throughput
    /// relative to the quiet baseline.
    pub fn classify(responsive: bool, throughput_mb_s: f64, baseline_mb_s: f64) -> Impact {
        if !responsive {
            Impact::Blackout
        } else if throughput_mb_s >= Self::UNAFFECTED_FRACTION * baseline_mb_s {
            Impact::Unaffected
        } else {
            Impact::Degraded
        }
    }
}

/// One drive's row in the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveImpact {
    /// Index in the fleet.
    pub index: usize,
    /// Distance from the sound source.
    pub distance_cm: f64,
    /// Write throughput under attack, MB/s.
    pub write_mb_s: f64,
    /// Classification.
    pub impact: Impact,
}

/// The aggregated result of attacking a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-drive rows, nearest first.
    pub drives: Vec<DriveImpact>,
}

impl FleetReport {
    /// Number of drives in blackout.
    pub fn blacked_out(&self) -> usize {
        self.drives
            .iter()
            .filter(|d| d.impact == Impact::Blackout)
            .count()
    }

    /// Number of drives degraded (including blackout).
    pub fn affected(&self) -> usize {
        self.drives
            .iter()
            .filter(|d| d.impact != Impact::Unaffected)
            .count()
    }
}

/// A line of drives at fixed spacing from the attack point.
#[derive(Debug, Clone)]
pub struct Fleet {
    testbed: Testbed,
    positions: Vec<Distance>,
}

impl Fleet {
    /// Builds a fleet of `count` drives spaced `spacing` apart, the first
    /// at `first` from the source.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(testbed: Testbed, first: Distance, spacing: Distance, count: usize) -> Self {
        assert!(count > 0, "fleet must contain at least one drive");
        let positions = (0..count)
            .map(|i| Distance::from_m(first.m() + spacing.m() * i as f64))
            .collect();
        Fleet { testbed, positions }
    }

    /// The drive positions.
    pub fn positions(&self) -> &[Distance] {
        &self.positions
    }

    /// Classifies every drive under the given attack. Drives are
    /// independent operating points, so large fleets are assessed in
    /// chunks on the experiment pool — the report is identical to a
    /// sequential walk down the line.
    pub fn assess(&self, params: AttackParams) -> FleetReport {
        let geo = DriveGeometry::barracuda_500gb();
        let timing = TimingModel::barracuda_500gb();
        let servo = ServoModel::typical();
        let tol = ToleranceModel::typical();
        let baseline =
            steady_state(&geo, &timing, &servo, &tol, None, 8, DiskOpKind::Write).throughput_mb_s;

        let jobs: Vec<_> = self
            .positions
            .iter()
            .enumerate()
            .map(|(index, &pos)| {
                let (testbed, geo, timing, servo, tol) =
                    (&self.testbed, &geo, &timing, &servo, &tol);
                move || {
                    let v = testbed.vibration_at(params.frequency, pos);
                    let ss = steady_state(geo, timing, servo, tol, Some(&v), 8, DiskOpKind::Write);
                    let impact = Impact::classify(ss.responsive(), ss.throughput_mb_s, baseline);
                    DriveImpact {
                        index,
                        distance_cm: pos.cm(),
                        write_mb_s: ss.throughput_mb_s,
                        impact,
                    }
                }
            })
            .collect();
        // Each point is closed-form math: chunk so dispatch stays a
        // rounding error even for thousand-drive fleets.
        FleetReport {
            drives: run_chunked(jobs, 16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_structures::Scenario;

    fn fleet() -> Fleet {
        Fleet::new(
            Testbed::paper_default(Scenario::PlasticTower),
            Distance::from_cm(1.0),
            Distance::from_cm(5.0),
            8,
        )
    }

    #[test]
    fn impact_decreases_with_distance() {
        let report = fleet().assess(AttackParams::paper_best());
        assert_eq!(report.drives.len(), 8);
        // Nearest drives dead, farthest untouched.
        assert_eq!(report.drives[0].impact, Impact::Blackout);
        assert_eq!(report.drives.last().unwrap().impact, Impact::Unaffected);
        // Monotone non-decreasing throughput along the line.
        for pair in report.drives.windows(2) {
            assert!(pair[1].write_mb_s >= pair[0].write_mb_s - 1e-9);
        }
        assert!(report.blacked_out() >= 1);
        assert!(report.affected() > report.blacked_out() - 1);
    }

    #[test]
    fn out_of_band_attack_hits_nothing() {
        let params =
            AttackParams::paper_best().at_frequency(deepnote_acoustics::Frequency::from_khz(10.0));
        let report = fleet().assess(params);
        assert_eq!(report.affected(), 0);
    }

    #[test]
    fn classification_boundary_is_inclusive_at_95_percent() {
        let baseline = 100.0;
        assert_eq!(Impact::classify(true, 95.0, baseline), Impact::Unaffected);
        assert_eq!(Impact::classify(true, 94.999, baseline), Impact::Degraded);
        assert_eq!(
            Impact::classify(true, baseline, baseline),
            Impact::Unaffected
        );
        // Responsive but crawling is degraded, never blackout.
        assert_eq!(Impact::classify(true, 0.0, baseline), Impact::Degraded);
        // Unresponsive is blackout regardless of the throughput figure.
        assert_eq!(
            Impact::classify(false, baseline, baseline),
            Impact::Blackout
        );
        assert_eq!(Impact::classify(false, 0.0, baseline), Impact::Blackout);
    }

    #[test]
    fn empty_report_counts_are_zero() {
        let report = FleetReport { drives: Vec::new() };
        assert_eq!(report.blacked_out(), 0);
        assert_eq!(report.affected(), 0);
    }

    #[test]
    fn affected_includes_blackout_and_degraded() {
        let row = |impact| DriveImpact {
            index: 0,
            distance_cm: 1.0,
            write_mb_s: 0.0,
            impact,
        };
        let report = FleetReport {
            drives: vec![
                row(Impact::Blackout),
                row(Impact::Degraded),
                row(Impact::Unaffected),
            ],
        };
        assert_eq!(report.blacked_out(), 1);
        assert_eq!(report.affected(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_fleet_rejected() {
        Fleet::new(
            Testbed::paper_default(Scenario::PlasticTower),
            Distance::from_cm(1.0),
            Distance::from_cm(5.0),
            0,
        );
    }
}
