//! The experimental testbed (paper §4, Figure 1).
//!
//! A [`Testbed`] is the assembled physics column: water conditions, the
//! attacker's signal chain, the propagation law, and one of the three
//! enclosure/mount scenarios. It converts attack parameters into the
//! [`VibrationState`] the victim drive experiences, and can mount/stop
//! attacks on any drive's [`VibrationInput`].

use crate::threat::AttackParams;
use deepnote_acoustics::{
    received_spl_with, Distance, Frequency, OperatingPoint, PropagationModel, SignalChain, Spl,
    TransferPathTable, WaterConditions,
};
use deepnote_hdd::{VibrationInput, VibrationState};
use deepnote_structures::{Scenario, VibrationPath};
use std::sync::Arc;

/// What the transfer path produces at one operating point: the received
/// SPL at the enclosure and the chassis displacement it drives.
#[derive(Debug, Clone, Copy)]
pub struct CachedTone {
    /// Received SPL at the enclosure wall.
    pub spl: Spl,
    /// Chassis displacement amplitude (µm) after the vibration path.
    pub displacement_um: f64,
}

/// The assembled tank-scale testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    water: WaterConditions,
    chain: SignalChain,
    propagation: PropagationModel,
    scenario: Scenario,
    path: VibrationPath,
    /// Optional precomputed transfer-path table (see
    /// [`Testbed::with_transfer_cache`]). `None` means every call walks
    /// the full physics chain.
    transfer: Option<Arc<TransferPathTable<CachedTone>>>,
}

impl Testbed {
    /// The paper's testbed for a given scenario: freshwater tank, AQ339 +
    /// TOA chain at full drive, tank-reverberant propagation.
    pub fn paper_default(scenario: Scenario) -> Self {
        Testbed {
            water: WaterConditions::tank_freshwater(),
            chain: SignalChain::paper_setup(Frequency::from_hz(650.0)),
            propagation: PropagationModel::TankReverberant,
            scenario,
            path: scenario.vibration_path(),
            transfer: None,
        }
    }

    /// Builds a custom testbed.
    pub fn new(
        water: WaterConditions,
        chain: SignalChain,
        propagation: PropagationModel,
        scenario: Scenario,
        path: VibrationPath,
    ) -> Self {
        Testbed {
            water,
            chain,
            propagation,
            scenario,
            path,
            transfer: None,
        }
    }

    /// The water in the tank (or ocean).
    pub fn water(&self) -> &WaterConditions {
        &self.water
    }

    /// The scenario under test.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The signal chain.
    pub fn chain(&self) -> &SignalChain {
        &self.chain
    }

    /// The vibration path (enclosure + structure + mount).
    pub fn vibration_path(&self) -> &VibrationPath {
        &self.path
    }

    /// Returns a copy with different water (the §5 water-conditions
    /// ablation). Drops any transfer cache — the old table's values no
    /// longer describe this testbed; re-install it last.
    pub fn with_water(mut self, water: WaterConditions) -> Self {
        self.water = water;
        self.transfer = None;
        self
    }

    /// Returns a copy with a different signal chain (e.g. a military
    /// projector). Drops any transfer cache.
    pub fn with_chain(mut self, chain: SignalChain) -> Self {
        self.chain = chain;
        self.transfer = None;
        self
    }

    /// Returns a copy with a different propagation model (open-water
    /// studies). Drops any transfer cache.
    pub fn with_propagation(mut self, model: PropagationModel) -> Self {
        self.propagation = model;
        self.transfer = None;
        self
    }

    /// Returns a copy with a modified vibration path (defenses). Drops
    /// any transfer cache.
    pub fn with_vibration_path(mut self, path: VibrationPath) -> Self {
        self.path = path;
        self.transfer = None;
        self
    }

    /// Precomputes the transfer path at every `frequency` × `distance`
    /// pair and returns a copy that answers those operating points from
    /// the table. Lookups are bit-exact (see
    /// [`deepnote_acoustics::cache`]); any other operating point falls
    /// back to the full physics chain, and the table entries are
    /// produced by that same chain, so results are byte-identical with
    /// the cache on or off. Install this *after* the other builder
    /// methods — they drop the table.
    pub fn with_transfer_cache(
        mut self,
        frequencies: &[Frequency],
        distances: &[Distance],
    ) -> Self {
        let points = frequencies
            .iter()
            .flat_map(|&f| distances.iter().map(move |&d| (f, d)));
        let table =
            TransferPathTable::precompute(points.map(|(f, d)| self.operating_point(f, d)), |p| {
                self.compute_tone(p.frequency(), p.distance())
            });
        self.transfer = Some(Arc::new(table));
        self
    }

    /// Returns a copy with no transfer cache (every call recomputes).
    pub fn without_transfer_cache(mut self) -> Self {
        self.transfer = None;
        self
    }

    /// The installed transfer table, if any — share it (or derive
    /// consumer tables from its operating points) at campaign setup.
    pub fn transfer_cache(&self) -> Option<&Arc<TransferPathTable<CachedTone>>> {
        self.transfer.as_ref()
    }

    /// The cache key for an attack tone against this testbed: the
    /// acoustic coordinates plus the scenario as the context
    /// discriminant (the vibration path is a pure function of the
    /// scenario for the paper's testbeds).
    pub fn operating_point(&self, frequency: Frequency, distance: Distance) -> OperatingPoint {
        OperatingPoint::new(frequency, distance, &self.water, self.scenario as u64)
    }

    /// The transfer-path output for one tone: table hit when
    /// precomputed, full physics chain otherwise.
    fn tone(&self, frequency: Frequency, distance: Distance) -> CachedTone {
        if let Some(table) = &self.transfer {
            if let Some(tone) = table.get(&self.operating_point(frequency, distance)) {
                return *tone;
            }
        }
        self.compute_tone(frequency, distance)
    }

    /// The uncached received-SPL chain — the single source of truth
    /// for both the precompute pass and the miss paths.
    fn compute_spl(&self, frequency: Frequency, distance: Distance) -> Spl {
        let emission = self.chain.retuned(frequency).emission();
        received_spl_with(&emission, distance, &self.water, self.propagation)
    }

    /// The uncached transfer path: received SPL, then the chassis
    /// displacement the vibration path drives from it.
    fn compute_tone(&self, frequency: Frequency, distance: Distance) -> CachedTone {
        let spl = self.compute_spl(frequency, distance);
        let displacement_um = self.path.drive_displacement_um(frequency, spl);
        CachedTone {
            spl,
            displacement_um,
        }
    }

    /// The SPL received at the enclosure for an attack at `frequency`
    /// from `distance`.
    pub fn received_spl(&self, params: AttackParams) -> Spl {
        if let Some(table) = &self.transfer {
            if let Some(tone) = table.get(&self.operating_point(params.frequency, params.distance))
            {
                return tone.spl;
            }
        }
        self.compute_spl(params.frequency, params.distance)
    }

    /// The chassis vibration the victim drive experiences under the given
    /// attack parameters.
    pub fn vibration_at(&self, frequency: Frequency, distance: Distance) -> VibrationState {
        let displacement_um = self.tone(frequency, distance).displacement_um;
        VibrationState::new(frequency, displacement_um)
    }

    /// Starts (or retunes) an attack on a drive's vibration input.
    pub fn mount_attack(&self, input: &VibrationInput, params: AttackParams) {
        input.set(Some(self.vibration_at(params.frequency, params.distance)));
    }

    /// Stops any attack on the input.
    pub fn stop_attack(&self, input: &VibrationInput) {
        input.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Distance;
    use deepnote_structures::Scenario;

    #[test]
    fn received_level_falls_with_distance() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let near = tb.received_spl(AttackParams::paper_best());
        let far = tb.received_spl(AttackParams::paper_best().at_distance(Distance::from_cm(25.0)));
        assert!(near.db() > far.db() + 5.0);
    }

    #[test]
    fn best_params_produce_blackout_scale_vibration() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let p = AttackParams::paper_best();
        let v = tb.vibration_at(p.frequency, p.distance);
        // Calibration: ~85 nm residual after servo rejection at 650 Hz,
        // i.e. raw chassis displacement in the ~500 nm class.
        assert!(
            (300.0..900.0).contains(&v.displacement_nm()),
            "displacement = {} nm",
            v.displacement_nm()
        );
    }

    #[test]
    fn out_of_band_vibration_is_weak() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let p = AttackParams::paper_best();
        let in_band = tb.vibration_at(p.frequency, p.distance);
        let out = tb.vibration_at(Frequency::from_khz(8.0), p.distance);
        assert!(in_band.displacement_nm() > 20.0 * out.displacement_nm());
    }

    #[test]
    fn mount_and_stop_attack_toggle_input() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let input = VibrationInput::quiescent();
        tb.mount_attack(&input, AttackParams::paper_best());
        assert!(input.current().is_some());
        tb.stop_attack(&input);
        assert!(input.current().is_none());
    }

    #[test]
    fn transfer_cache_is_byte_identical_hit_or_miss() {
        let plain = Testbed::paper_default(Scenario::PlasticTower);
        let freqs = [Frequency::from_hz(650.0), Frequency::from_khz(1.2)];
        let dists = [Distance::from_cm(1.0), Distance::from_cm(25.0)];
        let cached = plain.clone().with_transfer_cache(&freqs, &dists);
        assert_eq!(cached.transfer_cache().map(|t| t.len()), Some(4));

        // Precomputed points (hits) and an unseen point (miss) must both
        // reproduce the uncached physics to the bit.
        let probes = [
            (freqs[0], dists[0]),
            (freqs[1], dists[1]),
            (Frequency::from_hz(777.0), Distance::from_cm(7.0)),
        ];
        for (f, d) in probes {
            let a = plain.vibration_at(f, d);
            let b = cached.vibration_at(f, d);
            assert_eq!(a.displacement_nm().to_bits(), b.displacement_nm().to_bits());
            let params = AttackParams {
                frequency: f,
                distance: d,
            };
            assert_eq!(
                plain.received_spl(params).db().to_bits(),
                cached.received_spl(params).db().to_bits()
            );
        }
    }

    #[test]
    fn builder_methods_drop_stale_transfer_cache() {
        let cached = Testbed::paper_default(Scenario::PlasticTower)
            .with_transfer_cache(&[Frequency::from_hz(650.0)], &[Distance::from_cm(5.0)]);
        assert!(cached.transfer_cache().is_some());
        let retuned = cached.with_propagation(PropagationModel::Spherical);
        assert!(retuned.transfer_cache().is_none());
    }

    #[test]
    fn scenarios_differ() {
        let p = AttackParams::paper_best();
        let s1 =
            Testbed::paper_default(Scenario::PlasticDirect).vibration_at(p.frequency, p.distance);
        let s2 =
            Testbed::paper_default(Scenario::PlasticTower).vibration_at(p.frequency, p.distance);
        assert_ne!(s1.displacement_nm(), s2.displacement_nm());
    }
}
