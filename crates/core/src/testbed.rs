//! The experimental testbed (paper §4, Figure 1).
//!
//! A [`Testbed`] is the assembled physics column: water conditions, the
//! attacker's signal chain, the propagation law, and one of the three
//! enclosure/mount scenarios. It converts attack parameters into the
//! [`VibrationState`] the victim drive experiences, and can mount/stop
//! attacks on any drive's [`VibrationInput`].

use crate::threat::AttackParams;
use deepnote_acoustics::{
    received_spl_with, Frequency, PropagationModel, SignalChain, Spl, WaterConditions,
};
use deepnote_hdd::{VibrationInput, VibrationState};
use deepnote_structures::{Scenario, VibrationPath};

/// The assembled tank-scale testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    water: WaterConditions,
    chain: SignalChain,
    propagation: PropagationModel,
    scenario: Scenario,
    path: VibrationPath,
}

impl Testbed {
    /// The paper's testbed for a given scenario: freshwater tank, AQ339 +
    /// TOA chain at full drive, tank-reverberant propagation.
    pub fn paper_default(scenario: Scenario) -> Self {
        Testbed {
            water: WaterConditions::tank_freshwater(),
            chain: SignalChain::paper_setup(Frequency::from_hz(650.0)),
            propagation: PropagationModel::TankReverberant,
            scenario,
            path: scenario.vibration_path(),
        }
    }

    /// Builds a custom testbed.
    pub fn new(
        water: WaterConditions,
        chain: SignalChain,
        propagation: PropagationModel,
        scenario: Scenario,
        path: VibrationPath,
    ) -> Self {
        Testbed {
            water,
            chain,
            propagation,
            scenario,
            path,
        }
    }

    /// The water in the tank (or ocean).
    pub fn water(&self) -> &WaterConditions {
        &self.water
    }

    /// The scenario under test.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The signal chain.
    pub fn chain(&self) -> &SignalChain {
        &self.chain
    }

    /// The vibration path (enclosure + structure + mount).
    pub fn vibration_path(&self) -> &VibrationPath {
        &self.path
    }

    /// Returns a copy with different water (the §5 water-conditions
    /// ablation).
    pub fn with_water(mut self, water: WaterConditions) -> Self {
        self.water = water;
        self
    }

    /// Returns a copy with a different signal chain (e.g. a military
    /// projector).
    pub fn with_chain(mut self, chain: SignalChain) -> Self {
        self.chain = chain;
        self
    }

    /// Returns a copy with a different propagation model (open-water
    /// studies).
    pub fn with_propagation(mut self, model: PropagationModel) -> Self {
        self.propagation = model;
        self
    }

    /// Returns a copy with a modified vibration path (defenses).
    pub fn with_vibration_path(mut self, path: VibrationPath) -> Self {
        self.path = path;
        self
    }

    /// The SPL received at the enclosure for an attack at `frequency`
    /// from `distance`.
    pub fn received_spl(&self, params: AttackParams) -> Spl {
        let emission = self.chain.retuned(params.frequency).emission();
        received_spl_with(&emission, params.distance, &self.water, self.propagation)
    }

    /// The chassis vibration the victim drive experiences under the given
    /// attack parameters.
    pub fn vibration_at(
        &self,
        frequency: Frequency,
        distance: deepnote_acoustics::Distance,
    ) -> VibrationState {
        let params = AttackParams {
            frequency,
            distance,
        };
        let spl = self.received_spl(params);
        let displacement_um = self.path.drive_displacement_um(frequency, spl);
        VibrationState::new(frequency, displacement_um)
    }

    /// Starts (or retunes) an attack on a drive's vibration input.
    pub fn mount_attack(&self, input: &VibrationInput, params: AttackParams) {
        input.set(Some(self.vibration_at(params.frequency, params.distance)));
    }

    /// Stops any attack on the input.
    pub fn stop_attack(&self, input: &VibrationInput) {
        input.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Distance;
    use deepnote_structures::Scenario;

    #[test]
    fn received_level_falls_with_distance() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let near = tb.received_spl(AttackParams::paper_best());
        let far = tb.received_spl(AttackParams::paper_best().at_distance(Distance::from_cm(25.0)));
        assert!(near.db() > far.db() + 5.0);
    }

    #[test]
    fn best_params_produce_blackout_scale_vibration() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let p = AttackParams::paper_best();
        let v = tb.vibration_at(p.frequency, p.distance);
        // Calibration: ~85 nm residual after servo rejection at 650 Hz,
        // i.e. raw chassis displacement in the ~500 nm class.
        assert!(
            (300.0..900.0).contains(&v.displacement_nm()),
            "displacement = {} nm",
            v.displacement_nm()
        );
    }

    #[test]
    fn out_of_band_vibration_is_weak() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let p = AttackParams::paper_best();
        let in_band = tb.vibration_at(p.frequency, p.distance);
        let out = tb.vibration_at(Frequency::from_khz(8.0), p.distance);
        assert!(in_band.displacement_nm() > 20.0 * out.displacement_nm());
    }

    #[test]
    fn mount_and_stop_attack_toggle_input() {
        let tb = Testbed::paper_default(Scenario::PlasticTower);
        let input = VibrationInput::quiescent();
        tb.mount_attack(&input, AttackParams::paper_best());
        assert!(input.current().is_some());
        tb.stop_attack(&input);
        assert!(input.current().is_none());
    }

    #[test]
    fn scenarios_differ() {
        let p = AttackParams::paper_best();
        let s1 =
            Testbed::paper_default(Scenario::PlasticDirect).vibration_at(p.frequency, p.distance);
        let s2 =
            Testbed::paper_default(Scenario::PlasticTower).vibration_at(p.frequency, p.distance);
        assert_ne!(s1.displacement_nm(), s2.displacement_nm());
    }
}
