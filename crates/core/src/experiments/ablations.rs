//! §5 ablations: the open problems the paper calls out, quantified.
//!
//! * [`water_conditions`] — how temperature, salinity, and depth move the
//!   attack's effective range (§5 "Water Conditions").
//! * [`materials`] — enclosure material and wall thickness (§5 "Data
//!   Center Structure and HDD types").
//! * [`tolerance_sensitivity`] — how the read/write off-track threshold
//!   ratio shapes the asymmetry seen in Fig. 2 (§2.1/§4.1).
//! * [`attacker_power`] — commercial vs military source levels vs
//!   effective range (§5 "Effective Range").

use crate::testbed::Testbed;
use crate::threat::{AttackObjective, AttackParams, Attacker};
use deepnote_acoustics::propagation::{max_effective_range_m, received_spl_lloyd};
use deepnote_acoustics::Medium;
use deepnote_acoustics::{
    Celsius, Depth, Distance, Frequency, PropagationModel, Salinity, Spl, WaterConditions,
};
use deepnote_hdd::{
    steady_state, DiskOpKind, DriveGeometry, ServoModel, TimingModel, ToleranceModel,
};
use deepnote_structures::{Enclosure, Material, Scenario, VibrationPath};
use serde::{Deserialize, Serialize};

/// One row of the water-conditions study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaterRow {
    /// Condition label.
    pub label: String,
    /// Sound speed under these conditions, m/s.
    pub sound_speed_m_s: f64,
    /// Absorption at 650 Hz, dB/km.
    pub absorption_db_km: f64,
    /// Maximum range (m) at which the received level still reaches the
    /// blackout threshold, under open-water spherical spreading.
    pub blackout_range_m: Option<f64>,
}

/// The received level at the enclosure needed for a write blackout at
/// 650 Hz in Scenario 2, derived from the calibrated chain.
pub fn blackout_threshold_spl(testbed: &Testbed) -> Spl {
    // Search the received level at which the residual off-track equals
    // the recovery-escalation point. We invert numerically over source
    // distance using the testbed's own path.
    let geo = DriveGeometry::barracuda_500gb();
    let servo = ServoModel::typical();
    let tol = ToleranceModel::typical();
    let f = Frequency::from_hz(650.0);
    // Residual needed: read duty = escalation floor.
    let tol_nm = tol.tolerance_nm(geo.track_pitch_nm(), true);
    let needed_residual =
        tol_nm / (deepnote_hdd::drive::RECOVERY_ESCALATION_DUTY * std::f64::consts::PI / 2.0).sin();
    let needed_displacement_um = needed_residual / servo.rejection(f) / 1_000.0;
    // displacement = pressure × path_gain  ⇒  pressure = displacement / gain.
    let gain_per_pa = testbed.vibration_path().drive_displacement_um(
        f,
        Spl::from_pressure_pa(1.0, deepnote_acoustics::SplReference::Water1uPa),
    );
    let needed_pa = needed_displacement_um / gain_per_pa;
    Spl::from_pressure_pa(needed_pa, deepnote_acoustics::SplReference::Water1uPa)
}

/// Sweeps water conditions and reports attack range (military-grade
/// source, open-water spherical spreading — the §5 long-range scenario).
pub fn water_conditions() -> Vec<WaterRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let threshold = blackout_threshold_spl(&testbed);
    let attacker = Attacker::military_attacker(AttackObjective::ThroughputLoss);
    let emission = attacker
        .chain()
        .retuned(Frequency::from_hz(650.0))
        .emission();

    let cases = vec![
        (
            "tank freshwater 21°C".to_string(),
            WaterConditions::tank_freshwater(),
        ),
        (
            "cold sea 4°C / 35 PSU / 100 m".to_string(),
            WaterConditions::new(Celsius::new(4.0), Salinity::OCEAN, Depth::from_m(100.0)),
        ),
        (
            "Natick site 10°C / 35 PSU / 36 m".to_string(),
            WaterConditions::natick_seawater(),
        ),
        (
            "Hainan site 24°C / 33 PSU / 20 m".to_string(),
            WaterConditions::hainan_seawater(),
        ),
        (
            "warm shallow 30°C / 35 PSU / 5 m".to_string(),
            WaterConditions::new(Celsius::new(30.0), Salinity::OCEAN, Depth::from_m(5.0)),
        ),
    ];

    cases
        .into_iter()
        .map(|(label, water)| {
            let range = max_effective_range_m(
                &emission,
                threshold,
                &water,
                PropagationModel::Spherical,
                100_000.0,
            );
            WaterRow {
                label,
                sound_speed_m_s: water.sound_speed_m_s(),
                absorption_db_km: deepnote_acoustics::absorption_db_per_km(
                    Frequency::from_hz(650.0),
                    &water,
                ),
                blackout_range_m: range,
            }
        })
        .collect()
}

/// One row of the materials study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterialRow {
    /// Material / thickness label.
    pub label: String,
    /// Wall surface mass, kg/m².
    pub surface_mass_kg_m2: f64,
    /// Write throughput under the paper's best attack, MB/s.
    pub write_mb_s_under_attack: f64,
    /// Whether the attack still causes a blackout.
    pub blackout: bool,
}

/// Sweeps enclosure materials and thicknesses at the paper's operating
/// point (650 Hz, 1 cm, Scenario 2 structure).
pub fn materials() -> Vec<MaterialRow> {
    let cases = vec![
        (
            "hard plastic 5 mm (paper S1/S2)",
            Material::hard_plastic(),
            0.005,
        ),
        ("aluminum 3 mm (paper S3)", Material::aluminum(), 0.003),
        ("aluminum 10 mm", Material::aluminum(), 0.010),
        ("steel 10 mm", Material::steel(), 0.010),
        (
            "steel 25 mm (Natick-class vessel)",
            Material::steel(),
            0.025,
        ),
    ];
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let servo = ServoModel::typical();
    let tol = ToleranceModel::typical();
    let params = AttackParams::paper_best();

    cases
        .into_iter()
        .map(|(label, material, thickness)| {
            let enclosure = Enclosure::new(material, thickness, Medium::Nitrogen);
            let surface_mass = enclosure.surface_mass_kg_m2();
            let base = Scenario::PlasticTower;
            let path = VibrationPath::new(
                enclosure,
                base.container_modes(),
                base.mount(),
                VibrationPath::DEFAULT_COUPLING,
            );
            let testbed = Testbed::paper_default(base).with_vibration_path(path);
            let v = testbed.vibration_at(params.frequency, params.distance);
            let ss = steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Write);
            MaterialRow {
                label: label.to_string(),
                surface_mass_kg_m2: surface_mass,
                write_mb_s_under_attack: ss.throughput_mb_s,
                blackout: !ss.responsive(),
            }
        })
        .collect()
}

/// One row of the tolerance study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceRow {
    /// Read-tolerance fraction of track pitch.
    pub read_fraction: f64,
    /// Write-tolerance fraction of track pitch.
    pub write_fraction: f64,
    /// Width of the write-dead frequency band (Hz).
    pub write_dead_band_hz: f64,
    /// Width of the read-dead frequency band (Hz).
    pub read_dead_band_hz: f64,
}

/// Sweeps the off-track tolerance thresholds and reports the dead bands:
/// the mechanism behind the paper's read/write asymmetry.
pub fn tolerance_sensitivity() -> Vec<ToleranceRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let servo = ServoModel::typical();
    let distance = Distance::from_cm(1.0);

    let cases = [
        (0.15, 0.10),
        (0.20, 0.10),
        (0.15, 0.05),
        (0.30, 0.20),
        (0.10, 0.10),
    ];
    cases
        .iter()
        .map(|&(read_fraction, write_fraction)| {
            let tol = ToleranceModel::new(read_fraction, write_fraction);
            let mut write_band = 0.0;
            let mut read_band = 0.0;
            let mut hz = 100.0;
            while hz <= 16_900.0 {
                let v = testbed.vibration_at(Frequency::from_hz(hz), distance);
                let w = steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Write);
                let r = steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Read);
                if w.throughput_mb_s < 1.0 {
                    write_band += 100.0;
                }
                if r.throughput_mb_s < 1.0 {
                    read_band += 100.0;
                }
                hz += 100.0;
            }
            ToleranceRow {
                read_fraction,
                write_fraction,
                write_dead_band_hz: write_band,
                read_dead_band_hz: read_band,
            }
        })
        .collect()
}

/// One row of the attacker-depth (Lloyd mirror) study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthRow {
    /// Source description.
    pub label: String,
    /// Source depth, metres.
    pub source_depth_m: f64,
    /// Maximum horizontal range (m) with blackout-level received SPL,
    /// `None` if unreachable even at 100 m.
    pub blackout_range_m: Option<f64>,
}

/// Attacker depth vs reach, with the surface-reflection (Lloyd mirror)
/// path included: a shallow source loses its low-frequency energy to the
/// phase-inverted surface image, so deep deployments are partially
/// shielded from surface vessels — the attacker must dive.
pub fn attacker_depth() -> Vec<DepthRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let threshold = blackout_threshold_spl(&testbed);
    let water = WaterConditions::natick_seawater();
    let target_depth_m = 36.0; // Project Natick
    let emission = Attacker::military_attacker(AttackObjective::ThroughputLoss)
        .chain()
        .retuned(Frequency::from_hz(650.0))
        .emission();

    [
        ("surface vessel (2 m)", 2.0),
        ("shallow diver (10 m)", 10.0),
        ("at target depth (36 m)", 36.0),
    ]
    .iter()
    .map(|&(label, source_depth_m)| {
        // Scan outward for the farthest range that still meets the
        // threshold (the field has interference fringes, so take the
        // maximum passing range rather than bisecting).
        let mut best = None;
        let mut r = 100.0;
        while r <= 20_000.0 {
            let rx = received_spl_lloyd(
                &emission,
                &water,
                Distance::from_m(r),
                Depth::from_m(source_depth_m),
                Depth::from_m(target_depth_m),
            );
            if rx.db() >= threshold.db() {
                best = Some(r);
            }
            r += 50.0;
        }
        DepthRow {
            label: label.to_string(),
            source_depth_m,
            blackout_range_m: best,
        }
    })
    .collect()
}

/// One row of the seasonal-drift study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonRow {
    /// Water temperature label.
    pub label: String,
    /// Structural mode shift applied (1.0 = calibration temperature).
    pub frequency_scale: f64,
    /// Write throughput when attacking at the stale 650 Hz tuning, MB/s.
    pub write_at_stale_tuning_mb_s: f64,
    /// Best (most damaging) frequency after retuning, Hz.
    pub retuned_best_hz: f64,
    /// Write throughput at the retuned frequency, MB/s.
    pub write_at_retuned_mb_s: f64,
}

/// Seasonal resonance drift: a plastic container's stiffness (and with it
/// every structural mode, `f₀ ∝ √E`) changes with water temperature —
/// HDPE softens roughly 1.5 %/°C. An attacker who tuned to 650 Hz in
/// summer may find the band shifted in winter; re-sweeping recovers the
/// attack. Quantifies the §5 "Water Conditions" interaction the paper
/// flags for future work.
pub fn seasonal_drift() -> Vec<SeasonRow> {
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let servo = ServoModel::typical();
    let tol = ToleranceModel::typical();
    let base = Scenario::PlasticTower;
    let calibration_temp_c = 21.0; // the paper's tank
    let stiffness_slope_per_c = -0.015;

    [
        ("winter 4°C", 4.0),
        ("tank 21°C (calibration)", 21.0),
        ("tropical 30°C", 30.0),
    ]
    .iter()
    .map(|&(label, temp_c)| {
        let stiffness = (1.0_f64 + stiffness_slope_per_c * (temp_c - calibration_temp_c)).max(0.2);
        let scale = stiffness.sqrt();
        let path = VibrationPath::new(
            base.enclosure(),
            base.container_modes().with_frequencies_scaled(scale),
            base.mount(),
            VibrationPath::DEFAULT_COUPLING,
        );
        let testbed = Testbed::paper_default(base).with_vibration_path(path);
        let write_at = |hz: f64| {
            let v = testbed.vibration_at(Frequency::from_hz(hz), Distance::from_cm(10.0));
            steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Write)
                .throughput_mb_s
        };
        // Stale tuning: the paper's 650 Hz (probed at 10 cm where the
        // margin is thin enough for drift to matter).
        let stale = write_at(650.0);
        // Retune: coarse scan for the most damaging frequency.
        let mut best = (650.0, stale);
        let mut hz = 100.0;
        while hz <= 2_500.0 {
            let w = write_at(hz);
            if w < best.1 {
                best = (hz, w);
            }
            hz += 25.0;
        }
        SeasonRow {
            label: label.to_string(),
            frequency_scale: scale,
            write_at_stale_tuning_mb_s: stale,
            retuned_best_hz: best.0,
            write_at_retuned_mb_s: best.1,
        }
    })
    .collect()
}

/// One row of the tone-vs-noise study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumRow {
    /// Signal label.
    pub label: String,
    /// Number of simultaneous tones the source power is spread over.
    pub tones: usize,
    /// Effective off-track-driving displacement at the drive, nm.
    pub displacement_nm: f64,
    /// Write throughput under the attack, MB/s.
    pub write_mb_s: f64,
}

/// Compares a pure 650 Hz tone against the same acoustic power spread
/// over N tones across the vulnerable band (a band-noise attack). The
/// pure tone wins decisively — concentrating energy on the structural
/// resonance is what makes the paper's sine-wave methodology effective,
/// but broadband noise needs no frequency discovery at all.
pub fn noise_vs_tone() -> Vec<SpectrumRow> {
    use deepnote_hdd::VibrationState;
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let servo = ServoModel::typical();
    let tol = ToleranceModel::typical();
    let distance = Distance::from_cm(1.0);
    let total_level = testbed
        .chain()
        .retuned(Frequency::from_hz(650.0))
        .emission()
        .source_level;

    let mut rows = Vec::new();
    for &n in &[1usize, 4, 16, 64] {
        // Spread the power: each tone carries total − 10·log10(n) dB.
        let per_tone = total_level.plus_db(-10.0 * (n as f64).log10());
        let tones: Vec<VibrationState> = (0..n)
            .map(|i| {
                let hz = if n == 1 {
                    650.0
                } else {
                    300.0 + 1_400.0 * i as f64 / (n - 1) as f64
                };
                let f = Frequency::from_hz(hz);
                // Per-tone received level: same propagation loss as the
                // full-power chain, shifted by the power split.
                let full = testbed.vibration_at(f, distance);
                let scale = per_tone.pressure_pa() / total_level.pressure_pa();
                VibrationState::new(f, full.displacement_um() * scale)
            })
            .collect();
        let combined = VibrationState::combined(&tones).expect("non-empty");
        let ss = steady_state(
            &geo,
            &timing,
            &servo,
            &tol,
            Some(&combined),
            8,
            DiskOpKind::Write,
        );
        rows.push(SpectrumRow {
            label: if n == 1 {
                "pure 650 Hz tone (the paper's attack)".to_string()
            } else {
                format!("band noise over {n} tones, 300–1700 Hz")
            },
            tones: n,
            displacement_nm: servo.residual_offtrack_nm(&combined),
            write_mb_s: ss.throughput_mb_s,
        });
    }
    rows
}

/// One row of the attacker-power study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerRow {
    /// Attacker label.
    pub label: String,
    /// Source level, dB re 1 µPa.
    pub source_level_db: f64,
    /// Open-water blackout range in the Natick-site conditions, metres.
    pub blackout_range_m: Option<f64>,
}

/// Compares the commercial rig with a military projector for open-water
/// reach (§5 "Effective Range").
pub fn attacker_power() -> Vec<PowerRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let threshold = blackout_threshold_spl(&testbed);
    let water = WaterConditions::natick_seawater();
    [
        Attacker::paper_attacker(AttackObjective::ThroughputLoss),
        Attacker::military_attacker(AttackObjective::ThroughputLoss),
    ]
    .into_iter()
    .map(|attacker| {
        let emission = attacker
            .chain()
            .retuned(Frequency::from_hz(650.0))
            .emission();
        PowerRow {
            label: attacker.name().to_string(),
            source_level_db: emission.source_level.db(),
            blackout_range_m: max_effective_range_m(
                &emission,
                threshold,
                &water,
                PropagationModel::Spherical,
                1e6,
            ),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_attackers_lose_reach_to_the_surface_mirror() {
        let rows = attacker_depth();
        assert_eq!(rows.len(), 3);
        let surface = rows[0].blackout_range_m.unwrap_or(0.0);
        let deep = rows[2].blackout_range_m.unwrap_or(0.0);
        assert!(
            deep > 1.5 * surface.max(100.0),
            "surface {surface} m vs deep {deep} m"
        );
    }

    #[test]
    fn seasonal_drift_moves_the_best_frequency() {
        let rows = seasonal_drift();
        assert_eq!(rows.len(), 3);
        let winter = &rows[0];
        let calib = &rows[1];
        let tropical = &rows[2];
        // At the calibration temperature the stale tuning is near-optimal.
        assert!(
            calib.write_at_stale_tuning_mb_s <= calib.write_at_retuned_mb_s + 0.5,
            "{calib:?}"
        );
        // Cold water stiffens the container: modes shift up; warm water
        // shifts them down.
        assert!(winter.frequency_scale > 1.0 && tropical.frequency_scale < 1.0);
        assert!(
            winter.retuned_best_hz > tropical.retuned_best_hz,
            "winter {winter:?} vs tropical {tropical:?}"
        );
        // Retuning never loses to the stale tuning.
        for r in &rows {
            assert!(
                r.write_at_retuned_mb_s <= r.write_at_stale_tuning_mb_s + 1e-9,
                "{r:?}"
            );
        }
    }

    #[test]
    fn pure_tone_beats_band_noise_at_equal_power() {
        let rows = noise_vs_tone();
        assert_eq!(rows.len(), 4);
        let tone = &rows[0];
        // The focused tone drives far more off-track displacement than
        // any equal-power spread…
        for noise in &rows[1..] {
            assert!(
                tone.displacement_nm > noise.displacement_nm,
                "tone {tone:?} vs {noise:?}"
            );
        }
        // …and the tone blacks the drive out at the paper point.
        assert_eq!(tone.write_mb_s, 0.0);
    }

    #[test]
    fn blackout_threshold_is_plausible() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let t = blackout_threshold_spl(&testbed);
        // Must sit below the 1 cm received level (≈140 dB) and above the
        // 25 cm received level (≈126 dB), since the blackout boundary in
        // Table 1 is between 5 and 10 cm.
        assert!((126.0..140.0).contains(&t.db()), "threshold = {t}");
    }

    #[test]
    fn warmer_water_carries_sound_faster_not_farther_here() {
        let rows = water_conditions();
        assert_eq!(rows.len(), 5);
        let natick = rows.iter().find(|r| r.label.contains("Natick")).unwrap();
        let warm = rows.iter().find(|r| r.label.contains("warm")).unwrap();
        assert!(warm.sound_speed_m_s > natick.sound_speed_m_s);
        // A military projector reaches useful blackout ranges.
        assert!(natick.blackout_range_m.unwrap() > 1.0);
    }

    #[test]
    fn heavier_walls_blunt_the_attack() {
        let rows = materials();
        let plastic = &rows[0];
        let vessel = rows.last().unwrap();
        assert!(plastic.blackout, "{plastic:?}");
        assert!(
            vessel.write_mb_s_under_attack > plastic.write_mb_s_under_attack,
            "vessel {vessel:?} vs plastic {plastic:?}"
        );
    }

    #[test]
    fn wider_write_tolerance_narrows_the_dead_band() {
        let rows = tolerance_sensitivity();
        let paper = &rows[0]; // (0.15, 0.10)
        let hardened = rows.iter().find(|r| r.write_fraction == 0.20).unwrap();
        assert!(hardened.write_dead_band_hz <= paper.write_dead_band_hz);
        // And writes always die over at least as wide a band as reads.
        for r in &rows {
            assert!(r.write_dead_band_hz >= r.read_dead_band_hz, "{r:?}");
        }
    }

    #[test]
    fn military_projector_reaches_much_farther() {
        let rows = attacker_power();
        let commercial = rows[0].blackout_range_m.unwrap_or(0.0);
        let military = rows[1].blackout_range_m.unwrap_or(0.0);
        assert!(
            military > 10.0 * commercial.max(0.1),
            "c={commercial} m={military}"
        );
    }
}
