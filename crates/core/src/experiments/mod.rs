//! Experiment harnesses: one per table/figure in the paper's evaluation,
//! plus the §5 ablations.
//!
//! * [`frequency`] — Figure 2 (a: sequential write, b: sequential read):
//!   throughput vs attack frequency for Scenarios 1–3.
//! * [`range`] — Table 1 (FIO throughput/latency vs distance) and Table 2
//!   (RocksDB `readwhilewriting` vs distance).
//! * [`crash`] — Table 3 (time-to-crash for Ext4, Ubuntu server,
//!   RocksDB).
//! * [`ablations`] — §5 studies: water conditions, enclosure materials,
//!   tolerance sensitivity.
//! * [`adaptive`] — the §3 remote attacker: frequency discovery from
//!   observed request latency alone.
//! * [`redundancy`] — RAID-1 mirrors, co-located vs acoustically
//!   separated.
//! * [`stealth`] — duty-cycled attacks against the latency-anomaly
//!   detector.
//! * [`heatmap`] — the full frequency × distance attack surface and the
//!   operator's exclusion radius.
//! * [`covert`] — the cited DiskFiltration threat, underwater: seek-noise
//!   exfiltration budgets.
//!
//! All harnesses run on virtual time and are deterministic for a fixed
//! seed; the full evaluation takes seconds of wall time.

pub mod ablations;
pub mod adaptive;
pub mod covert;
pub mod crash;
pub mod frequency;
pub mod heatmap;
pub mod range;
pub mod redundancy;
pub mod stealth;

/// Default per-point measurement window for throughput experiments.
pub const MEASURE_SECS: u64 = 5;
