//! Stealth attacks: duty-cycled interference vs. detection.
//!
//! §3 distinguishes a *controlled throughput loss* objective from an
//! outright crash. A patient adversary can pulse the speaker — short
//! bursts separated by quiet — to degrade service while starving a
//! latency-anomaly detector of the sustained signal it needs. This
//! experiment sweeps the duty cycle and reports both sides: throughput
//! stolen vs. whether (and when) the defender's alarm fires.

use crate::detect::{AttackDetector, DetectorConfig, Verdict};
use crate::testbed::Testbed;
use crate::threat::AttackParams;
use deepnote_blockdev::{BlockDevice, HddDisk};
use deepnote_sim::{Clock, SimDuration};
use serde::{Deserialize, Serialize};

/// One duty-cycle operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealthRow {
    /// Fraction of time the speaker is on (0–1).
    pub duty: f64,
    /// Burst length, seconds.
    pub burst_s: f64,
    /// Victim write throughput over the whole window, MB/s.
    pub throughput_mb_s: f64,
    /// Fraction of baseline throughput destroyed (0–1).
    pub damage_fraction: f64,
    /// Whether the defender's detector ever alarmed.
    pub detected: bool,
    /// Seconds until the first alarm, if any.
    pub detected_after_s: Option<f64>,
}

/// Runs one pulsed attack: bursts of `burst` every `period`, for
/// `total` seconds of virtual time, against a storage node with an
/// [`AttackDetector`] on its request stream.
pub fn pulsed_attack(
    testbed: &Testbed,
    params: AttackParams,
    burst: SimDuration,
    period: SimDuration,
    total: SimDuration,
    detector_config: DetectorConfig,
) -> StealthRow {
    assert!(
        burst.as_nanos() <= period.as_nanos(),
        "burst cannot exceed the period"
    );
    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut detector = AttackDetector::new(detector_config);

    // Calibrate the detector on healthy traffic.
    let mut cursor = 0u64;
    let buf = vec![0u8; 4096];
    let request = |disk: &mut HddDisk, cursor: &mut u64| -> Option<f64> {
        let start = disk.drive().clock().now();
        let lba = (*cursor * 8) % (1 << 20);
        *cursor += 1;
        let ok = disk.write_blocks(lba, &buf).is_ok();
        let end = disk.drive().clock().now();
        ok.then(|| (end - start).as_millis_f64())
    };
    for _ in 0..detector_config.calibration_samples + 4 {
        detector.observe(request(&mut disk, &mut cursor));
    }

    // Baseline throughput for damage accounting.
    let baseline_mb_s = 22.7;

    let t0 = clock.now();
    let deadline = t0 + total;
    let mut completed = 0u64;
    let mut detected_after = None;
    while clock.now() < deadline {
        // Is the speaker on right now?
        let phase_ns = (clock.now() - t0).as_nanos() % period.as_nanos();
        let on = phase_ns < burst.as_nanos();
        if on {
            if vibration.current().is_none() {
                testbed.mount_attack(&vibration, params);
            }
        } else if vibration.current().is_some() {
            testbed.stop_attack(&vibration);
        }

        let obs = request(&mut disk, &mut cursor);
        if obs.is_some() {
            completed += 1;
        }
        if detector.observe(obs) == Verdict::UnderAttack && detected_after.is_none() {
            detected_after = Some((clock.now() - t0).as_secs_f64());
        }
    }
    testbed.stop_attack(&vibration);

    let elapsed = (clock.now() - t0).as_secs_f64();
    let throughput = completed as f64 * 4096.0 / 1e6 / elapsed;
    StealthRow {
        duty: burst.as_secs_f64() / period.as_secs_f64(),
        burst_s: burst.as_secs_f64(),
        throughput_mb_s: throughput,
        damage_fraction: (1.0 - throughput / baseline_mb_s).clamp(0.0, 1.0),
        detected: detected_after.is_some(),
        detected_after_s: detected_after,
    }
}

/// Sweeps duty cycles from continuous down to sparse pulses.
pub fn duty_cycle_sweep(testbed: &Testbed) -> Vec<StealthRow> {
    let params = AttackParams::paper_best();
    let total = SimDuration::from_secs(30);
    let period = SimDuration::from_secs(2);
    [1.0, 0.5, 0.25, 0.1, 0.05]
        .iter()
        .map(|&duty| {
            let burst = period.mul_f64(duty);
            pulsed_attack(
                testbed,
                params,
                burst,
                period,
                total,
                DetectorConfig::default(),
            )
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[StealthRow]) -> String {
    let mut out = String::from("Stealth study: pulsed attack duty cycle vs damage vs detection\n");
    for r in rows {
        let det = match r.detected_after_s {
            Some(s) => format!("alarm at {s:.1} s"),
            None => "undetected".to_string(),
        };
        out.push_str(&format!(
            "  duty {:>4.0}% (burst {:>4.1} s): throughput {:>5.1} MB/s, damage {:>4.0}%, {det}\n",
            r.duty * 100.0,
            r.burst_s,
            r.throughput_mb_s,
            r.damage_fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_structures::Scenario;

    #[test]
    fn continuous_attack_maximizes_damage_and_is_detected() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let rows = duty_cycle_sweep(&testbed);
        let continuous = &rows[0];
        assert!(continuous.damage_fraction > 0.95, "{continuous:?}");
        assert!(continuous.detected, "{continuous:?}");
        assert!(continuous.detected_after_s.unwrap() < 10.0);
    }

    #[test]
    fn damage_decreases_with_duty() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let rows = duty_cycle_sweep(&testbed);
        for pair in rows.windows(2) {
            assert!(
                pair[1].damage_fraction <= pair[0].damage_fraction + 0.05,
                "{pair:?}"
            );
        }
        // Even sparse pulses steal real throughput: a 5 % duty burns far
        // more than 5 % of throughput because every burst costs retry
        // storms (the attacker's leverage).
        let sparse = rows.last().unwrap();
        assert!(
            sparse.damage_fraction > sparse.duty,
            "damage {} vs duty {}",
            sparse.damage_fraction,
            sparse.duty
        );
    }

    #[test]
    fn some_duty_cycle_evades_the_default_detector() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let rows = duty_cycle_sweep(&testbed);
        let evasive: Vec<&StealthRow> = rows.iter().filter(|r| !r.detected).collect();
        assert!(
            !evasive.is_empty(),
            "at least one sparse duty cycle should slip under the default detector: {rows:?}"
        );
        // And such evasion still causes measurable damage.
        assert!(evasive.iter().any(|r| r.damage_fraction > 0.1));
    }
}
