//! Redundancy against acoustic attacks: does RAID-1 help?
//!
//! The paper attacks one drive; an operator would mirror. This experiment
//! quantifies the obvious caveat: redundancy only helps if the mirrors do
//! not share an acoustic fate. Two layouts are compared under the paper's
//! best attack:
//!
//! * **co-located** — both mirrors in the attacked enclosure (same
//!   vibration): the array dies with the drives;
//! * **separated** — the second mirror in an enclosure 1 m away: the
//!   array degrades but keeps serving, and resyncs afterwards.

use crate::testbed::Testbed;
use crate::threat::AttackParams;
use deepnote_acoustics::Distance;
use deepnote_blockdev::{BlockDevice, HddDisk, Raid1, RaidState};
use deepnote_sim::Clock;
use serde::{Deserialize, Serialize};

/// The outcome of attacking one mirror layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyOutcome {
    /// Layout label.
    pub layout: String,
    /// Writes that completed during the attack window.
    pub writes_served_during_attack: u64,
    /// Writes attempted during the attack window.
    pub writes_attempted_during_attack: u64,
    /// Array state when the attack ended.
    pub state_during_attack: String,
    /// Whether the array returned to `Optimal` after the attack (resync).
    pub recovered_to_optimal: bool,
    /// Blocks copied by the resync.
    pub resynced_blocks: u64,
}

fn run_layout(label: &str, mirror_distances_cm: [f64; 2]) -> RedundancyOutcome {
    let testbed = Testbed::paper_default(deepnote_structures::Scenario::PlasticTower);
    let clock = Clock::new();
    let mirrors = vec![
        HddDisk::barracuda_500gb(clock.clone()),
        HddDisk::barracuda_500gb(clock.clone()),
    ];
    let vibrations: Vec<_> = mirrors.iter().map(|m| m.vibration()).collect();
    let mut array = Raid1::new(mirrors);

    // Healthy warm-up writes.
    let buf = vec![0xA5u8; 4096];
    for i in 0..50u64 {
        array
            .write_blocks(i * 8, &buf)
            .expect("healthy array serves");
    }

    // Attack: each mirror receives the vibration for its own distance.
    for (v, &cm) in vibrations.iter().zip(&mirror_distances_cm) {
        let params = AttackParams::paper_best().at_distance(Distance::from_cm(cm));
        testbed.mount_attack(v, params);
    }
    let mut served = 0u64;
    let attempts = 60u64;
    for i in 0..attempts {
        if array.write_blocks((100 + i) * 8, &buf).is_ok() {
            served += 1;
        }
    }
    let state_during_attack = format!("{:?}", array.state());

    // Attack ends; resync any failed mirrors.
    for v in &vibrations {
        testbed.stop_attack(v);
    }
    let mut resynced = 0;
    for idx in 0..array.mirror_count() {
        if array.mirror_failed(idx) {
            resynced += array.resync(idx).unwrap_or(0);
        }
    }
    RedundancyOutcome {
        layout: label.to_string(),
        writes_served_during_attack: served,
        writes_attempted_during_attack: attempts,
        state_during_attack,
        recovered_to_optimal: array.state() == RaidState::Optimal,
        resynced_blocks: resynced,
    }
}

/// Runs both layouts.
pub fn mirror_study() -> Vec<RedundancyOutcome> {
    vec![
        run_layout("co-located mirrors (same enclosure, 1 cm)", [1.0, 1.0]),
        run_layout("separated mirrors (1 cm and 100 cm)", [1.0, 100.0]),
    ]
}

/// Renders the study as text.
pub fn render(rows: &[RedundancyOutcome]) -> String {
    let mut out = String::from("Redundancy study: RAID-1 under the paper's best attack\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<44} served {}/{} writes, state {}, recovered={} (resynced {} blocks)\n",
            r.layout,
            r.writes_served_during_attack,
            r.writes_attempted_during_attack,
            r.state_during_attack,
            r.recovered_to_optimal,
            r.resynced_blocks
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_mirrors_die_together_separated_survive() {
        let rows = mirror_study();
        assert_eq!(rows.len(), 2);
        let colocated = &rows[0];
        let separated = &rows[1];

        // Same enclosure: every attacked write fails, the array reports
        // failure during the attack.
        assert_eq!(colocated.writes_served_during_attack, 0, "{colocated:?}");
        assert!(
            colocated.state_during_attack.contains("Failed"),
            "{colocated:?}"
        );

        // Separated: everything keeps being served in degraded mode, and
        // the failed mirror resyncs afterwards.
        assert_eq!(
            separated.writes_served_during_attack, separated.writes_attempted_during_attack,
            "{separated:?}"
        );
        assert!(
            separated.state_during_attack.contains("Degraded"),
            "{separated:?}"
        );
        assert!(separated.recovered_to_optimal);
        assert!(separated.resynced_blocks > 0);
    }

    #[test]
    fn render_mentions_both_layouts() {
        let text = render(&mirror_study());
        assert!(text.contains("co-located"), "{text}");
        assert!(text.contains("separated"), "{text}");
    }
}
