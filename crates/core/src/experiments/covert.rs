//! The second acoustic threat class the paper cites (§1/§2.1, ref. [18]
//! *DiskFiltration*): the drive as a **transmitter**. Seeks make noise;
//! malware on an air-gapped (here: water-gapped) node can modulate data
//! into seek patterns, and a hydrophone outside the vessel can decode it.
//!
//! The channel here is on–off keyed: a `1` bit is a burst of full-stroke
//! seeks, a `0` bit is idle. The receiver integrates received sound
//! pressure per bit period and thresholds against the ambient sea noise.
//!
//! Emission model (documented assumption, cf. DESIGN.md): a full-stroke
//! seek radiates ~95 dB re 1 µPa at the enclosure wall — in-air drive
//! seek noise (~45 dB re 20 µPa at ~0.3 m) coupled through the same
//! chassis→wall path the injection attack exploits in reverse.

use deepnote_acoustics::{
    received_spl, AcousticEmission, Distance, Frequency, Spl, WaterConditions,
};
use deepnote_blockdev::BlockDevice;
use deepnote_blockdev::HddDisk;
use deepnote_sim::{Clock, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Source level at the enclosure wall for one full-stroke seek burst.
pub const SEEK_SOURCE_LEVEL_DB: f64 = 95.0;
/// The actuator's dominant acoustic frequency.
pub const SEEK_TONE_HZ: f64 = 900.0;
/// Deep-sea ambient noise in the actuator band (sea state ~2, shipping).
pub const AMBIENT_NOISE_DB: f64 = 63.0;
/// Seeks per `1` bit (integration gain for the receiver).
pub const SEEKS_PER_BIT: u32 = 8;

/// The transmitter: malware issuing seek patterns on the victim drive.
#[derive(Debug)]
pub struct CovertTransmitter {
    disk: HddDisk,
    clock: Clock,
    /// Timestamped emission log: (seek time, level at the wall).
    emissions: Vec<SimTime>,
}

impl CovertTransmitter {
    /// Creates a transmitter on a fresh victim drive.
    pub fn new(clock: Clock) -> Self {
        CovertTransmitter {
            disk: HddDisk::barracuda_500gb(clock.clone()),
            clock,
            emissions: Vec::new(),
        }
    }

    /// Transmits `bits`, returning the virtual duration of the message.
    /// Each `1` is [`SEEKS_PER_BIT`] alternating full-stroke reads; each
    /// `0` is the same wall-clock period of silence. Bits are padded to
    /// the fixed [`CovertTransmitter::bit_period_s`].
    pub fn transmit(&mut self, bits: &[bool]) -> SimDuration {
        let start = self.clock.now();
        let far_lba = self.disk.num_blocks() - 8;
        let mut buf = vec![0u8; 4096];
        let bit_period = SimDuration::from_secs_f64(self.bit_period_s());
        let mut at_far = false;

        for &bit in bits {
            let bit_start = self.clock.now();
            if bit {
                for _ in 0..SEEKS_PER_BIT {
                    let target = if at_far { 0 } else { far_lba };
                    at_far = !at_far;
                    let _ = self.disk.read_blocks(target, &mut buf);
                    self.emissions.push(self.clock.now());
                }
            }
            // Pad (or idle) to the fixed bit period.
            let elapsed = self.clock.now() - bit_start;
            assert!(
                elapsed <= bit_period,
                "bit overran its period: {elapsed} > {bit_period}"
            );
            self.clock.advance(bit_period - elapsed);
        }
        self.clock.now() - start
    }

    /// The fixed bit period in seconds: [`SEEKS_PER_BIT`] full-stroke
    /// seeks plus a 5 % guard band.
    pub fn bit_period_s(&self) -> f64 {
        let geo = self.disk.drive().geometry();
        let timing = self.disk.drive().timing();
        let per_seek = timing.seek_s(geo, 0, geo.tracks_per_surface() - 1)
            + timing.rotational_latency_s(geo)
            + timing.sequential_op_s(geo, 8, true);
        per_seek * SEEKS_PER_BIT as f64 * 1.05
    }

    /// The emission timeline.
    pub fn emissions(&self) -> &[SimTime] {
        &self.emissions
    }
}

/// What one seek radiates into the water at the enclosure wall.
pub fn seek_emission() -> AcousticEmission {
    AcousticEmission {
        frequency: Frequency::from_hz(SEEK_TONE_HZ),
        source_level: Spl::water_db(SEEK_SOURCE_LEVEL_DB),
        source_radius: Distance::from_cm(15.0), // the vessel wall radiates
    }
}

/// The channel budget at a given range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelBudget {
    /// Hydrophone distance, metres.
    pub range_m: f64,
    /// Received per-seek level, dB re 1 µPa.
    pub received_db: f64,
    /// SNR against the ambient floor after integrating a full bit
    /// ([`SEEKS_PER_BIT`] seeks add 10·log10(N) of gain), dB.
    pub snr_db: f64,
    /// Whether the bit is decodable (SNR ≥ 3 dB).
    pub decodable: bool,
    /// Achievable raw bitrate, bits/s (0 when not decodable).
    pub bitrate_bps: f64,
}

/// Computes the covert-channel budget at `range_m` in `water`.
pub fn channel_budget(range_m: f64, water: &WaterConditions, bit_period_s: f64) -> ChannelBudget {
    let e = seek_emission();
    let received = received_spl(&e, Distance::from_m(range_m), water);
    let integration_gain = 10.0 * (SEEKS_PER_BIT as f64).log10();
    let snr = received.db() + integration_gain - AMBIENT_NOISE_DB;
    let decodable = snr >= 3.0;
    ChannelBudget {
        range_m,
        received_db: received.db(),
        snr_db: snr,
        decodable,
        bitrate_bps: if decodable { 1.0 / bit_period_s } else { 0.0 },
    }
}

/// The ideal receiver: thresholds the emission timeline per bit period.
/// Returns the decoded bits (correct whenever the budget says decodable —
/// this is the noiseless-timing bound).
pub fn decode(
    emissions: &[SimTime],
    start: SimTime,
    bit_period: SimDuration,
    bits: usize,
) -> Vec<bool> {
    (0..bits)
        .map(|i| {
            let lo = start + bit_period * i as u64;
            let hi = lo + bit_period;
            emissions.iter().any(|&t| t > lo && t <= hi)
        })
        .collect()
}

/// One row of the covert-channel study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertRow {
    /// Hydrophone range label.
    pub range_m: f64,
    /// SNR after integration, dB.
    pub snr_db: f64,
    /// Bits per second (0 = out of range).
    pub bitrate_bps: f64,
}

/// Sweeps hydrophone ranges for the exfiltration budget (Natick-site
/// water).
pub fn exfiltration_study() -> Vec<CovertRow> {
    let water = WaterConditions::natick_seawater();
    let clock = Clock::new();
    let tx = CovertTransmitter::new(clock);
    let bit_period = tx.bit_period_s();
    [1.0, 10.0, 50.0, 100.0, 500.0, 2_000.0]
        .iter()
        .map(|&range_m| {
            let b = channel_budget(range_m, &water, bit_period);
            CovertRow {
                range_m,
                snr_db: b.snr_db,
                bitrate_bps: b.bitrate_bps,
            }
        })
        .collect()
}

/// Renders the study.
pub fn render(rows: &[CovertRow]) -> String {
    let mut out =
        String::from("Covert exfiltration (DiskFiltration underwater): seek-noise channel\n");
    for r in rows {
        let rate = if r.bitrate_bps > 0.0 {
            format!("{:.1} bit/s", r.bitrate_bps)
        } else {
            "below noise".to_string()
        };
        out.push_str(&format!(
            "  hydrophone at {:>6.0} m: SNR {:>6.1} dB -> {rate}\n",
            r.range_m, r.snr_db
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_transmission_decodes() {
        let clock = Clock::new();
        let mut tx = CovertTransmitter::new(clock.clone());
        let message = [true, false, true, true, false, false, true, false];
        let bit_period = SimDuration::from_secs_f64(tx.bit_period_s());
        let start = clock.now();
        let total = tx.transmit(&message);
        assert_eq!(total, bit_period * message.len() as u64);
        let decoded = decode(tx.emissions(), start, bit_period, message.len());
        assert_eq!(decoded, message);
    }

    #[test]
    fn bit_period_and_rate_are_plausible() {
        let tx = CovertTransmitter::new(Clock::new());
        let period = tx.bit_period_s();
        // 8 full-stroke seeks ≈ 4 × (17 + 4.2 + 0.2) ms × 2 ≈ 0.17 s.
        assert!((0.05..0.5).contains(&period), "period = {period} s");
        let rate = 1.0 / period;
        assert!((2.0..20.0).contains(&rate), "rate = {rate} bps");
    }

    #[test]
    fn channel_dies_with_distance() {
        let rows = exfiltration_study();
        assert!(rows[0].bitrate_bps > 0.0, "{:?}", rows[0]);
        let last = rows.last().unwrap();
        assert_eq!(last.bitrate_bps, 0.0, "{last:?}");
        // SNR monotone decreasing.
        for pair in rows.windows(2) {
            assert!(pair[1].snr_db < pair[0].snr_db);
        }
    }

    #[test]
    fn integration_gain_helps() {
        let water = WaterConditions::natick_seawater();
        let b = channel_budget(50.0, &water, 0.2);
        let single_seek_snr = b.received_db - AMBIENT_NOISE_DB;
        assert!(b.snr_db > single_seek_snr + 8.0); // 10·log10(8) ≈ 9 dB
    }
}
