//! Table 3: crashes in real-world applications (§4.4).
//!
//! Each victim runs its normal workload; after a warm-up period the
//! attack starts at the paper's best parameters (650 Hz, 140 dB, 1 cm,
//! Scenario 2) and stays on until the application dies. The reported
//! time-to-crash is measured from attack start, like the paper's.

use crate::parallel::run_all;
use crate::testbed::Testbed;
use crate::threat::AttackParams;
use deepnote_blockdev::HddDisk;
use deepnote_fs::{Filesystem, FsError};
use deepnote_kv::{bench::BenchSpec, Db, DbError};
use deepnote_os::{OsState, ServerOs};
use deepnote_sim::{Clock, SimDuration};
use deepnote_structures::Scenario;
use serde::{Deserialize, Serialize};

/// How long the victim runs healthily before the attack starts.
pub const WARMUP: SimDuration = SimDuration::from_secs(10);
/// Give up if the application survives this long under attack.
pub const ATTACK_LIMIT: SimDuration = SimDuration::from_secs(300);

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRow {
    /// Application name ("Ext4", "Ubuntu", "RocksDB").
    pub application: String,
    /// The paper's description column.
    pub description: String,
    /// Seconds from attack start to crash, `None` if it survived.
    pub time_to_crash_s: Option<f64>,
    /// The error the application died with.
    pub error: String,
}

/// Ext4 under attack: an application appends to a log file while the
/// journal commits on its 5-second timer; the blocked commit aborts the
/// journal with error −5.
pub fn ext4_crash(testbed: &Testbed) -> CrashRow {
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut fs = Filesystem::format(disk, clock.clone()).expect("format succeeds");
    fs.create("/var").expect("setup");
    fs.create("/var/log").expect("setup");
    fs.create_file("/var/log/app.log").expect("setup");

    let mut offset = 0u64;
    let mut append = |fs: &mut Filesystem<HddDisk>| -> Result<(), FsError> {
        let line = format!("[{}] request served\n", fs.clock().now());
        let data = line.into_bytes();
        let r = fs.write_file("/var/log/app.log", offset, &data);
        if r.is_ok() {
            offset += data.len() as u64;
        }
        r
    };

    // Warm-up; end right after a journal commit so the measured
    // time-to-crash spans one full commit interval plus the JBD patience,
    // matching the paper's timeline.
    let mut commits_seen = 0;
    loop {
        append(&mut fs).expect("healthy phase");
        fs.tick(clock.now()).expect("healthy phase");
        let commits = fs.stats().journal_commits;
        let committed_now = commits > commits_seen;
        commits_seen = commits;
        clock.advance(SimDuration::from_millis(100));
        if clock.now().as_secs_f64() >= WARMUP.as_secs_f64() && committed_now {
            break;
        }
    }
    let attack_start = clock.now();
    testbed.mount_attack(&vibration, AttackParams::paper_best());

    let deadline = attack_start + ATTACK_LIMIT;
    let mut error = String::new();
    let mut crashed = None;
    while clock.now() < deadline {
        // The application may see transient EIO while the kernel's
        // journal thread keeps running — tick unconditionally.
        let _ = append(&mut fs);
        let step = fs.tick(clock.now());
        if let Err(e @ FsError::JournalAborted { .. }) = step {
            crashed = Some((clock.now() - attack_start).as_secs_f64());
            error = e.to_string();
            break;
        }
        clock.advance(SimDuration::from_millis(100));
    }
    CrashRow {
        application: "Ext4".to_string(),
        description: "Journaling filesystem".to_string(),
        time_to_crash_s: crashed,
        error,
    }
}

/// Ubuntu server under attack: syslog writes, periodic `ls`, writeback
/// and journal daemons, until the root filesystem dies under it.
pub fn ubuntu_crash(testbed: &Testbed) -> CrashRow {
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut os = ServerOs::install(disk, clock.clone()).expect("install succeeds");

    while clock.now().as_secs_f64() < WARMUP.as_secs_f64() {
        os.write_log("healthy heartbeat").expect("healthy phase");
        clock.advance(SimDuration::from_secs(1));
        os.tick();
    }
    assert!(os.running(), "server must survive warm-up");
    let attack_start = clock.now();
    testbed.mount_attack(&vibration, AttackParams::paper_best());

    let deadline = attack_start + ATTACK_LIMIT;
    let mut crashed = None;
    let mut error = String::new();
    while clock.now() < deadline {
        let _ = os.write_log("request under attack");
        let _ = os.exec("ls");
        clock.advance(SimDuration::from_secs(1));
        if let OsState::Crashed { at, reason } = os.tick() {
            crashed = Some((*at - attack_start).as_secs_f64());
            error = reason.clone();
            break;
        }
    }
    CrashRow {
        application: "Ubuntu".to_string(),
        description: "Ubuntu server 16.04".to_string(),
        time_to_crash_s: crashed,
        error,
    }
}

/// RocksDB under attack: a `readwhilewriting` workload until the WAL can
/// no longer be persisted.
pub fn rocksdb_crash(testbed: &Testbed) -> CrashRow {
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut db = Db::create(disk, clock.clone()).expect("create succeeds");
    let spec = BenchSpec {
        num_keys: 10_000,
        ..BenchSpec::default()
    };
    deepnote_kv::bench::fill_seq(&mut db, &spec).expect("load phase");

    // Warm-up traffic.
    let mut rng = deepnote_sim::SimRng::seeded(7);
    while clock.now().as_secs_f64() < WARMUP.as_secs_f64() {
        let i = rng.below(spec.num_keys);
        db.put(&spec.key(i), &spec.value(i)).expect("healthy phase");
        let _ = db
            .get(&spec.key(rng.below(spec.num_keys)))
            .expect("healthy phase");
    }
    let attack_start = clock.now();
    testbed.mount_attack(&vibration, AttackParams::paper_best());

    let deadline = attack_start + ATTACK_LIMIT;
    let mut crashed = None;
    let mut error = String::new();
    while clock.now() < deadline {
        let i = rng.below(spec.num_keys);
        let step: Result<(), DbError> = db
            .put(&spec.key(i), &spec.value(i))
            .and_then(|()| db.get(&spec.key(rng.below(spec.num_keys))).map(|_| ()))
            .and_then(|()| db.tick());
        if let Err(e) = step {
            if e.is_fatal() {
                crashed = Some((clock.now() - attack_start).as_secs_f64());
                error = e.to_string();
                break;
            }
        }
    }
    CrashRow {
        application: "RocksDB".to_string(),
        description: "Key-value database".to_string(),
        time_to_crash_s: crashed,
        error,
    }
}

/// Regenerates Table 3 (Scenario 2, best parameters). Each victim is
/// its own virtual-time world, so the three run concurrently on the
/// experiment pool; row order is fixed regardless of which dies first.
pub fn table3() -> Vec<CrashRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let victims: Vec<fn(&Testbed) -> CrashRow> = vec![ext4_crash, ubuntu_crash, rocksdb_crash];
    run_all(
        victims
            .into_iter()
            .map(|victim| {
                let testbed = &testbed;
                move || victim(testbed)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_applications_crash_near_81_seconds() {
        let rows = table3();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            let t = row
                .time_to_crash_s
                .unwrap_or_else(|| panic!("{} must crash", row.application));
            // Paper: 80.0 s (Ext4), 81.0 s (Ubuntu), 81.3 s (RocksDB) —
            // average 80.8 s. Accept the 75–95 s window for shape.
            assert!((70.0..100.0).contains(&t), "{}: {t} s", row.application);
        }
        // Error signatures match the paper's observations.
        assert!(rows[0].error.contains("-5"), "{}", rows[0].error);
        assert!(
            rows[1].error.contains("journal") || rows[1].error.contains("read-only"),
            "{}",
            rows[1].error
        );
        assert!(
            rows[2].error.contains("sync_without_flush"),
            "{}",
            rows[2].error
        );
    }

    #[test]
    fn no_attack_means_no_crash() {
        // Run the Ext4 victim with a testbed whose attack is never
        // mounted: survive the full window.
        let clock = Clock::new();
        let disk = HddDisk::barracuda_500gb(clock.clone());
        let mut fs = Filesystem::format(disk, clock.clone()).unwrap();
        fs.create_file("/log").unwrap();
        let mut offset = 0u64;
        for _ in 0..600 {
            let data = b"healthy line\n".to_vec();
            fs.write_file("/log", offset, &data).unwrap();
            offset += data.len() as u64;
            fs.tick(clock.now()).unwrap();
            clock.advance(SimDuration::from_millis(200));
        }
        assert_eq!(fs.state(), deepnote_fs::FsState::Active);
    }
}
