//! Figure 2: HDD read/write throughput during an acoustic attack at
//! different frequencies, in all three scenarios.
//!
//! Methodology mirrors §4.1: the speaker sits 1 cm from the container and
//! sweeps 100 Hz → 16.9 kHz (50 Hz refinement around vulnerable bands);
//! sequential 4 KiB read and write throughput is recorded per frequency.
//!
//! Two evaluation modes are provided: the closed-form steady-state model
//! (fast — used by the benches to regenerate the figure) and a measured
//! mode that runs the actual FIO-style jobs against the mechanical drive.

use crate::parallel::run_all;
use crate::testbed::Testbed;
use deepnote_acoustics::{Distance, Frequency, SweepPlan};
use deepnote_blockdev::HddDisk;
use deepnote_hdd::{
    steady_state, DiskOpKind, DriveGeometry, ServoModel, TimingModel, ToleranceModel,
};
use deepnote_iobench::{run_job, JobSpec};
use deepnote_sim::{Clock, SimDuration, TimeSeries};
use deepnote_structures::Scenario;
use serde::{Deserialize, Serialize};

/// The sweep result for one scenario: Fig. 2a (write) and Fig. 2b (read).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequencySweep {
    /// The scenario swept.
    pub scenario: Scenario,
    /// Sequential-write throughput vs frequency (MB/s vs Hz) — Fig. 2a.
    pub write: TimeSeries,
    /// Sequential-read throughput vs frequency (MB/s vs Hz) — Fig. 2b.
    pub read: TimeSeries,
}

impl FrequencySweep {
    /// The contiguous frequency band (Hz) where write throughput is below
    /// `threshold_mb_s`, if any — the paper's "vulnerable band".
    pub fn write_dead_band(&self, threshold_mb_s: f64) -> Option<(f64, f64)> {
        self.write.widest_region_below(threshold_mb_s)
    }

    /// As [`FrequencySweep::write_dead_band`], for reads.
    pub fn read_dead_band(&self, threshold_mb_s: f64) -> Option<(f64, f64)> {
        self.read.widest_region_below(threshold_mb_s)
    }
}

/// Sweeps one scenario with the closed-form model (fast path).
pub fn sweep_scenario(scenario: Scenario, distance: Distance, plan: &SweepPlan) -> FrequencySweep {
    let testbed = Testbed::paper_default(scenario);
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let servo = ServoModel::typical();
    let tol = ToleranceModel::typical();

    let mut write = TimeSeries::new(format!("{scenario} seq write"), "Hz", "MB/s");
    let mut read = TimeSeries::new(format!("{scenario} seq read"), "Hz", "MB/s");
    for step in plan.coarse_steps() {
        let v = testbed.vibration_at(step.frequency, distance);
        let w = steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Write);
        let r = steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Read);
        write.push(step.frequency.hz(), w.throughput_mb_s);
        read.push(step.frequency.hz(), r.throughput_mb_s);
    }
    FrequencySweep {
        scenario,
        write,
        read,
    }
}

/// Sweeps all three scenarios (the full Figure 2), fast path — one
/// pool job per scenario, identical output to sweeping in sequence.
pub fn figure2(distance: Distance, plan: &SweepPlan) -> Vec<FrequencySweep> {
    run_all(
        Scenario::ALL
            .iter()
            .map(|&s| move || sweep_scenario(s, distance, plan))
            .collect(),
    )
}

/// Measures one frequency point with the op-level drive and FIO-style
/// jobs (slow path; cross-validates the closed-form sweep).
pub fn measure_point(
    scenario: Scenario,
    frequency: Frequency,
    distance: Distance,
    seconds: u64,
) -> (f64, f64) {
    let testbed = Testbed::paper_default(scenario);
    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    let vib = disk.vibration();
    vib.set(Some(testbed.vibration_at(frequency, distance)));
    let write = run_job(
        &JobSpec::seq_write("fig2-w").with_runtime(SimDuration::from_secs(seconds)),
        &mut disk,
        &clock,
    );
    let read = run_job(
        &JobSpec::seq_read("fig2-r").with_runtime(SimDuration::from_secs(seconds)),
        &mut disk,
        &clock,
    );
    (read.throughput_mb_s, write.throughput_mb_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coarse_plan() -> SweepPlan {
        SweepPlan::paper_sweep()
    }

    #[test]
    fn scenario2_band_matches_paper() {
        let sweep = sweep_scenario(
            Scenario::PlasticTower,
            Distance::from_cm(1.0),
            &coarse_plan(),
        );
        let (lo, hi) = sweep.write_dead_band(1.0).expect("a dead band must exist");
        // Paper: losses occur between 300 Hz and ~1.7 kHz.
        assert!((150.0..=400.0).contains(&lo), "band starts at {lo}");
        assert!((1_300.0..=1_800.0).contains(&hi), "band ends at {hi}");
    }

    #[test]
    fn scenario3_write_band_wider_than_read_band() {
        // Paper (§4.1): in Scenario 3 writes die over 300 Hz–1.3 kHz but
        // reads only over 300–800 Hz.
        let sweep = sweep_scenario(Scenario::MetalTower, Distance::from_cm(1.0), &coarse_plan());
        let (_, w_hi) = sweep.write_dead_band(1.0).unwrap();
        let (_, r_hi) = sweep.read_dead_band(1.0).unwrap();
        assert!(w_hi > r_hi, "write band ends {w_hi}, read band ends {r_hi}");
    }

    #[test]
    fn out_of_band_throughput_is_nominal() {
        for sweep in figure2(Distance::from_cm(1.0), &coarse_plan()) {
            let w_at_8k = sweep.write.nearest_y(8_000.0).unwrap();
            let r_at_8k = sweep.read.nearest_y(8_000.0).unwrap();
            assert!(
                (w_at_8k - 22.7).abs() < 0.5,
                "{}: {w_at_8k}",
                sweep.scenario
            );
            assert!(
                (r_at_8k - 18.0).abs() < 0.5,
                "{}: {r_at_8k}",
                sweep.scenario
            );
        }
    }

    #[test]
    fn measured_point_agrees_with_model_at_extremes() {
        // Dead zone.
        let (r, w) = measure_point(
            Scenario::PlasticTower,
            Frequency::from_hz(650.0),
            Distance::from_cm(1.0),
            2,
        );
        assert_eq!((r, w), (0.0, 0.0));
        // Healthy zone.
        let (r, w) = measure_point(
            Scenario::PlasticTower,
            Frequency::from_khz(10.0),
            Distance::from_cm(1.0),
            2,
        );
        assert!((r - 18.0).abs() < 0.5, "read = {r}");
        assert!((w - 22.7).abs() < 0.5, "write = {w}");
    }
}
