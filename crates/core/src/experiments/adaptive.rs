//! The adaptive remote attacker (§3's methodology, made concrete).
//!
//! The paper's threat model requires no inside access: "the attacker
//! should perform a frequency sweep … by remotely varying the attack
//! sound waves and observing resultant delays in online applications
//! that use the target data center." This harness implements exactly
//! that loop: a storage node services block requests; the attacker dwells
//! on each sweep frequency, fires a handful of requests, and classifies
//! the frequency by the latency/timeout signal alone.

use crate::testbed::Testbed;
use deepnote_acoustics::{Distance, Frequency, SweepPlan};
use deepnote_blockdev::{BlockDevice, HddDisk};
use deepnote_sim::Clock;
use serde::{Deserialize, Serialize};

/// What the remote observer saw while dwelling on one frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Probe {
    /// The transmitted frequency, Hz.
    pub frequency_hz: f64,
    /// Mean latency of completed requests, ms (`None` if all timed out).
    pub mean_latency_ms: Option<f64>,
    /// Requests that errored/timed out.
    pub timeouts: u32,
    /// Classified vulnerable (timeouts, or latency far above baseline).
    pub vulnerable: bool,
}

/// The attacker's findings after the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discovery {
    /// Every coarse and refinement probe, in sweep order.
    pub probes: Vec<Probe>,
    /// The vulnerable frequencies found, Hz, ascending.
    pub vulnerable_hz: Vec<f64>,
    /// The most damaging frequency observed (most timeouts, then highest
    /// latency), if any frequency was vulnerable.
    pub best_frequency_hz: Option<f64>,
    /// Healthy-baseline mean request latency, ms.
    pub baseline_latency_ms: f64,
}

impl Discovery {
    /// The contiguous vulnerable band `(lo, hi)` in Hz, if any.
    pub fn vulnerable_band(&self) -> Option<(f64, f64)> {
        Some((*self.vulnerable_hz.first()?, *self.vulnerable_hz.last()?))
    }
}

/// A storage node servicing remote block requests — the only interface
/// the attacker can observe.
struct StorageNode {
    disk: HddDisk,
    clock: Clock,
    cursor: u64,
}

impl StorageNode {
    fn new(clock: Clock) -> Self {
        StorageNode {
            disk: HddDisk::barracuda_500gb(clock.clone()),
            clock,
            cursor: 0,
        }
    }

    /// Services one request (a 4 KiB write then a 4 KiB read) and returns
    /// the observed latency in ms, or `None` on timeout/error.
    fn request(&mut self) -> Option<f64> {
        let start = self.clock.now();
        let lba = (self.cursor * 8) % (1 << 20);
        self.cursor += 1;
        let buf = vec![0xC3u8; 4096];
        let mut out = vec![0u8; 4096];
        let ok = self.disk.write_blocks(lba, &buf).is_ok()
            && self.disk.read_blocks(lba, &mut out).is_ok();
        let elapsed = (self.clock.now() - start).as_millis_f64();
        ok.then_some(elapsed)
    }
}

/// Runs the remote discovery sweep: `requests_per_probe` requests per
/// dwell, classifying a frequency as vulnerable when any request times
/// out or mean latency exceeds `10×` the healthy baseline.
pub fn remote_frequency_discovery(
    testbed: &Testbed,
    distance: Distance,
    plan: &SweepPlan,
    requests_per_probe: u32,
) -> Discovery {
    assert!(
        requests_per_probe > 0,
        "need at least one request per probe"
    );
    let clock = Clock::new();
    let mut node = StorageNode::new(clock.clone());
    let vibration = node.disk.vibration();

    // Healthy baseline.
    let mut baseline = 0.0;
    for _ in 0..requests_per_probe {
        baseline += node.request().expect("healthy node serves requests");
    }
    let baseline_latency_ms = baseline / requests_per_probe as f64;
    let threshold_ms = baseline_latency_ms * 10.0;

    let mut probes = Vec::new();
    let mut probe_fn = |f: Frequency| -> bool {
        vibration.set(Some(testbed.vibration_at(f, distance)));
        let mut latencies = Vec::new();
        let mut timeouts = 0;
        for _ in 0..requests_per_probe {
            match node.request() {
                Some(ms) => latencies.push(ms),
                None => timeouts += 1,
            }
        }
        vibration.clear();
        // Drain any retry debris so the next probe starts clean.
        let _ = node.request();

        let mean =
            (!latencies.is_empty()).then(|| latencies.iter().sum::<f64>() / latencies.len() as f64);
        let vulnerable = timeouts > 0 || mean.is_some_and(|m| m > threshold_ms);
        probes.push(Probe {
            frequency_hz: f.hz(),
            mean_latency_ms: mean,
            timeouts,
            vulnerable,
        });
        vulnerable
    };

    let _steps = plan.run_adaptive(&mut probe_fn);

    let mut vulnerable_hz: Vec<f64> = probes
        .iter()
        .filter(|p| p.vulnerable)
        .map(|p| p.frequency_hz)
        .collect();
    vulnerable_hz.sort_by(f64::total_cmp);
    vulnerable_hz.dedup();

    let best_frequency_hz = probes
        .iter()
        .filter(|p| p.vulnerable)
        .max_by(|a, b| {
            (a.timeouts, a.mean_latency_ms.map_or(f64::INFINITY, |m| m))
                .partial_cmp(&(b.timeouts, b.mean_latency_ms.map_or(f64::INFINITY, |m| m)))
                .expect("no NaNs here")
        })
        .map(|p| p.frequency_hz);

    Discovery {
        probes,
        vulnerable_hz,
        best_frequency_hz,
        baseline_latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_structures::Scenario;

    fn quick_plan() -> SweepPlan {
        // Coarse 200 Hz steps over 100 Hz..4 kHz keeps the test fast.
        SweepPlan::new(
            Frequency::from_hz(100.0),
            Frequency::from_khz(4.0),
            Frequency::from_hz(200.0),
            Frequency::from_hz(50.0),
        )
    }

    #[test]
    fn attacker_finds_the_band_without_inside_access() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let discovery =
            remote_frequency_discovery(&testbed, Distance::from_cm(1.0), &quick_plan(), 6);
        let (lo, hi) = discovery.vulnerable_band().expect("band must be found");
        // The paper's vulnerable band is 300 Hz–1.7 kHz; remote probing
        // must land inside/around it.
        assert!((100.0..=500.0).contains(&lo), "band starts {lo}");
        assert!((900.0..=2_000.0).contains(&hi), "band ends {hi}");
        // The best frequency is in the heart of the band, like the
        // paper's 650 Hz choice.
        let best = discovery.best_frequency_hz.unwrap();
        assert!((300.0..=1_400.0).contains(&best), "best = {best}");
        // Healthy baseline is sub-millisecond.
        assert!(discovery.baseline_latency_ms < 1.0);
    }

    #[test]
    fn no_false_positives_out_of_band() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let plan = SweepPlan::new(
            Frequency::from_khz(5.0),
            Frequency::from_khz(10.0),
            Frequency::from_hz(1_000.0),
            Frequency::from_hz(500.0),
        );
        let discovery = remote_frequency_discovery(&testbed, Distance::from_cm(1.0), &plan, 6);
        assert!(
            discovery.vulnerable_hz.is_empty(),
            "{:?}",
            discovery.vulnerable_hz
        );
        assert!(discovery.best_frequency_hz.is_none());
    }

    #[test]
    fn farther_speaker_finds_a_narrower_band() {
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let near = remote_frequency_discovery(&testbed, Distance::from_cm(1.0), &quick_plan(), 4);
        let far = remote_frequency_discovery(&testbed, Distance::from_cm(15.0), &quick_plan(), 4);
        assert!(far.vulnerable_hz.len() <= near.vulnerable_hz.len());
    }
}
