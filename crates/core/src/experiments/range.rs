//! Tables 1 and 2: attack effectiveness vs distance (§4.2, §4.3).
//!
//! The paper fixes the best frequency (650 Hz, Scenario 2) and moves the
//! speaker from 1 cm to 25 cm, measuring FIO sequential read/write
//! (Table 1) and RocksDB `readwhilewriting` (Table 2) at each distance.

use crate::parallel::run_all;
use crate::testbed::Testbed;
use crate::threat::AttackParams;
use deepnote_acoustics::Distance;
use deepnote_blockdev::HddDisk;
use deepnote_iobench::{run_job, JobSpec};
use deepnote_kv::{bench, Db};
use deepnote_sim::{Clock, SimDuration};
use deepnote_structures::Scenario;
use serde::{Deserialize, Serialize};

/// The distances tested in the paper, in cm. `None` encodes the
/// "No Attack" baseline row.
pub fn paper_distances() -> Vec<Option<f64>> {
    vec![
        None,
        Some(1.0),
        Some(5.0),
        Some(10.0),
        Some(15.0),
        Some(20.0),
        Some(25.0),
    ]
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FioRangeRow {
    /// "No Attack" or "`<n>` cm".
    pub label: String,
    /// Sequential-read throughput, MB/s.
    pub read_mb_s: f64,
    /// Sequential-write throughput, MB/s.
    pub write_mb_s: f64,
    /// Mean read latency (ms), `None` = no response ("-").
    pub read_latency_ms: Option<f64>,
    /// Mean write latency (ms), `None` = no response ("-").
    pub write_latency_ms: Option<f64>,
}

fn row_label(distance_cm: Option<f64>) -> String {
    match distance_cm {
        None => "No Attack".to_string(),
        Some(cm) => format!("{cm:.0} cm"),
    }
}

/// Runs one Table 1 row: fresh drive, attack mounted (or not), FIO read
/// then write for `seconds` each.
pub fn fio_row(testbed: &Testbed, distance_cm: Option<f64>, seconds: u64) -> FioRangeRow {
    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    if let Some(cm) = distance_cm {
        let params = AttackParams::paper_best().at_distance(Distance::from_cm(cm));
        testbed.mount_attack(&disk.vibration(), params);
    }
    let read = run_job(
        &JobSpec::seq_read("t1-read").with_runtime(SimDuration::from_secs(seconds)),
        &mut disk,
        &clock,
    );
    let write = run_job(
        &JobSpec::seq_write("t1-write").with_runtime(SimDuration::from_secs(seconds)),
        &mut disk,
        &clock,
    );
    FioRangeRow {
        label: row_label(distance_cm),
        read_mb_s: read.throughput_mb_s,
        write_mb_s: write.throughput_mb_s,
        read_latency_ms: read.mean_latency_ms,
        write_latency_ms: write.mean_latency_ms,
    }
}

/// Regenerates Table 1 (Scenario 2, 650 Hz). Rows are isolated
/// virtual-time worlds, so they run concurrently on the experiment
/// pool; the result is identical to evaluating them in sequence.
pub fn table1(seconds: u64) -> Vec<FioRangeRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    run_all(
        paper_distances()
            .into_iter()
            .map(|d| {
                let testbed = &testbed;
                move || fio_row(testbed, d, seconds)
            })
            .collect(),
    )
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvRangeRow {
    /// "No Attack" or "`<n>` cm".
    pub label: String,
    /// `readwhilewriting` payload throughput, MB/s.
    pub throughput_mb_s: f64,
    /// I/O rate in units of 100 000 ops/s (the paper's column).
    pub io_rate_x100k: f64,
    /// Virtual time at which the store crashed, if it did.
    pub crashed_at_s: Option<f64>,
}

/// Runs one Table 2 row.
pub fn kv_row(testbed: &Testbed, distance_cm: Option<f64>, spec: &bench::BenchSpec) -> KvRangeRow {
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut db = Db::create(disk, clock).expect("fresh device formats cleanly");
    bench::fill_seq(&mut db, spec).expect("load phase on quiet drive succeeds");
    if let Some(cm) = distance_cm {
        let params = AttackParams::paper_best().at_distance(Distance::from_cm(cm));
        testbed.mount_attack(&vibration, params);
    }
    let report = bench::read_while_writing(&mut db, spec);
    KvRangeRow {
        label: row_label(distance_cm),
        throughput_mb_s: report.throughput_mb_s,
        io_rate_x100k: report.ops_per_s_x100k(),
        crashed_at_s: report.crashed_at_s,
    }
}

/// Regenerates Table 2 (Scenario 2, 650 Hz), one pool job per row.
pub fn table2(spec: &bench::BenchSpec) -> Vec<KvRangeRow> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    run_all(
        paper_distances()
            .into_iter()
            .map(|d| {
                let testbed = &testbed;
                move || kv_row(testbed, d, spec)
            })
            .collect(),
    )
}

/// A `BenchSpec` sized for quick table regeneration.
pub fn quick_kv_spec() -> bench::BenchSpec {
    bench::BenchSpec {
        num_keys: 20_000,
        duration: SimDuration::from_secs(10),
        ..bench::BenchSpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_shape() {
        let rows = table1(3);
        assert_eq!(rows.len(), 7);

        // Baseline row: 18.0 / 22.7 MB/s, 0.2 ms.
        let base = &rows[0];
        assert_eq!(base.label, "No Attack");
        assert!((base.read_mb_s - 18.0).abs() < 0.3, "{base:?}");
        assert!((base.write_mb_s - 22.7).abs() < 0.3, "{base:?}");

        // 1 cm and 5 cm: total blackout, no response.
        for row in &rows[1..3] {
            assert_eq!(row.read_mb_s, 0.0, "{row:?}");
            assert_eq!(row.write_mb_s, 0.0, "{row:?}");
            assert_eq!(row.read_latency_ms, None);
            assert_eq!(row.write_latency_ms, None);
        }

        // 10 cm: reads degraded but alive, writes crawling (paper: 12.6
        // read, 0.3 write).
        let at10 = &rows[3];
        assert!((8.0..16.0).contains(&at10.read_mb_s), "{at10:?}");
        assert!(at10.write_mb_s < 2.0 && at10.write_mb_s > 0.0, "{at10:?}");

        // 15 cm: reads ~full, writes still degraded.
        let at15 = &rows[4];
        assert!(at15.read_mb_s > 16.0, "{at15:?}");
        assert!(at15.write_mb_s < 5.0, "{at15:?}");

        // 20 and 25 cm: effectively recovered.
        for row in &rows[5..] {
            assert!(row.read_mb_s > 17.0, "{row:?}");
            assert!(row.write_mb_s > 20.0, "{row:?}");
        }
    }

    #[test]
    fn table2_matches_paper_shape() {
        let spec = bench::BenchSpec {
            num_keys: 5_000,
            duration: SimDuration::from_secs(3),
            ..bench::BenchSpec::default()
        };
        let rows = table2(&spec);
        assert_eq!(rows.len(), 7);
        let base = &rows[0];
        assert!(base.throughput_mb_s > 5.0, "{base:?}");
        assert!(base.io_rate_x100k > 0.6, "{base:?}");
        // Blackout at 1 and 5 cm.
        for row in &rows[1..3] {
            assert!(row.throughput_mb_s < 0.2, "{row:?}");
        }
        // Recovery by 20 cm.
        assert!(
            rows[5].throughput_mb_s > 0.8 * base.throughput_mb_s,
            "{:?}",
            rows[5]
        );
        assert!(
            rows[6].throughput_mb_s > 0.8 * base.throughput_mb_s,
            "{:?}",
            rows[6]
        );
    }
}
