//! The attack surface as a heatmap: write throughput over the full
//! frequency × distance grid.
//!
//! Figure 2 is one slice (distance = 1 cm) and Table 1 another
//! (frequency = 650 Hz) of the same two-dimensional surface; this
//! experiment computes the whole thing, which is what an operator would
//! want when assessing a deployment ("at what standoff does every
//! frequency become safe?").

use crate::testbed::Testbed;
use deepnote_acoustics::{Distance, Frequency};
use deepnote_hdd::{
    steady_state, DiskOpKind, DriveGeometry, ServoModel, TimingModel, ToleranceModel,
};
use serde::{Deserialize, Serialize};

/// The computed surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Frequency axis, Hz (rows).
    pub frequencies_hz: Vec<f64>,
    /// Distance axis, cm (columns).
    pub distances_cm: Vec<f64>,
    /// `values[row][col]` = write throughput MB/s at
    /// `(frequencies_hz[row], distances_cm[col])`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// The value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.values[row][col]
    }

    /// The safe standoff per frequency: the smallest sampled distance at
    /// which throughput is at least `fraction` of nominal, or `None` if
    /// even the farthest sample is degraded.
    pub fn safe_distance_cm(&self, row: usize, fraction: f64, nominal: f64) -> Option<f64> {
        let threshold = fraction * nominal;
        self.distances_cm
            .iter()
            .zip(&self.values[row])
            .find(|(_, &v)| v >= threshold)
            .map(|(&d, _)| d)
    }

    /// The worst (largest) safe standoff over all frequencies — the
    /// exclusion radius an operator must enforce around the enclosure.
    pub fn exclusion_radius_cm(&self, fraction: f64, nominal: f64) -> Option<f64> {
        (0..self.frequencies_hz.len())
            .map(|row| self.safe_distance_cm(row, fraction, nominal))
            .collect::<Option<Vec<f64>>>()
            .and_then(|v| v.into_iter().max_by(f64::total_cmp))
    }

    /// Renders the surface as TSV (`frequency<TAB>distance<TAB>value`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("# frequency_hz\tdistance_cm\twrite_mb_s\n");
        for (r, &hz) in self.frequencies_hz.iter().enumerate() {
            for (c, &cm) in self.distances_cm.iter().enumerate() {
                out.push_str(&format!("{hz}\t{cm}\t{:.3}\n", self.values[r][c]));
            }
        }
        out
    }
}

/// Computes the surface with the closed-form model.
///
/// # Panics
///
/// Panics on an empty axis.
pub fn compute(testbed: &Testbed, frequencies_hz: Vec<f64>, distances_cm: Vec<f64>) -> Heatmap {
    assert!(
        !frequencies_hz.is_empty() && !distances_cm.is_empty(),
        "heatmap axes must be non-empty"
    );
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let servo = ServoModel::typical();
    let tol = ToleranceModel::typical();

    let values = frequencies_hz
        .iter()
        .map(|&hz| {
            distances_cm
                .iter()
                .map(|&cm| {
                    let v = testbed.vibration_at(Frequency::from_hz(hz), Distance::from_cm(cm));
                    steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Write)
                        .throughput_mb_s
                })
                .collect()
        })
        .collect();
    Heatmap {
        frequencies_hz,
        distances_cm,
        values,
    }
}

/// The default grid: 100 Hz–4 kHz in 100 Hz rows, 1–50 cm in 1 cm
/// columns.
pub fn default_grid(testbed: &Testbed) -> Heatmap {
    let frequencies: Vec<f64> = (1..=40).map(|i| i as f64 * 100.0).collect();
    let distances: Vec<f64> = (1..=50).map(|i| i as f64).collect();
    compute(testbed, frequencies, distances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_structures::Scenario;

    fn map() -> Heatmap {
        default_grid(&Testbed::paper_default(Scenario::PlasticTower))
    }

    #[test]
    fn surface_contains_both_paper_slices() {
        let m = map();
        // The 650 Hz row at 1 cm: blackout (Fig. 2 / Table 1).
        let row_650 = m.frequencies_hz.iter().position(|&f| f == 650.0);
        // 650 is not on the 100 Hz grid; use 600 and 700 instead.
        assert!(row_650.is_none());
        let row_600 = m.frequencies_hz.iter().position(|&f| f == 600.0).unwrap();
        assert_eq!(m.at(row_600, 0), 0.0); // 1 cm
                                           // Far column recovered.
        let last_col = m.distances_cm.len() - 1;
        assert!((m.at(row_600, last_col) - 22.7).abs() < 0.1);
        // Out-of-band row never degraded.
        let row_4k = m.frequencies_hz.iter().position(|&f| f == 4_000.0).unwrap();
        assert!(m.values[row_4k].iter().all(|&v| (v - 22.7).abs() < 0.1));
    }

    #[test]
    fn throughput_monotone_along_distance() {
        let m = map();
        for row in &m.values {
            for pair in row.windows(2) {
                assert!(pair[1] >= pair[0] - 1e-9, "{pair:?}");
            }
        }
    }

    #[test]
    fn exclusion_radius_matches_table1_boundary() {
        let m = map();
        let radius = m.exclusion_radius_cm(0.9, 22.7).expect("all rows recover");
        // Table 1 shows recovery by 20 cm at 650 Hz, the worst frequency;
        // the exclusion radius over all frequencies lands nearby.
        assert!((14.0..30.0).contains(&radius), "radius = {radius} cm");
    }

    #[test]
    fn tsv_dumps_every_cell() {
        let m = compute(
            &Testbed::paper_default(Scenario::PlasticTower),
            vec![650.0],
            vec![1.0, 25.0],
        );
        let tsv = m.to_tsv();
        assert_eq!(tsv.lines().count(), 3); // header + 2 cells
        assert!(tsv.contains("650\t1\t0.000"), "{tsv}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_axis_rejected() {
        compute(
            &Testbed::paper_default(Scenario::PlasticTower),
            vec![],
            vec![1.0],
        );
    }
}
