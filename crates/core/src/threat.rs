//! The threat model (paper §3).
//!
//! The adversary transmits underwater sound of controllable frequency and
//! amplitude at a known enclosure location. They cannot tamper with
//! hardware or software, attach anything to the enclosure, or use
//! malware/network vectors. Two objectives are distinguished by severity:
//! controlled throughput loss, and prolonged attacks that crash crucial
//! processes.

use deepnote_acoustics::{Distance, Frequency, SignalChain, Speaker, SweepPlan};
use serde::{Deserialize, Serialize};

/// What the adversary is trying to achieve (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackObjective {
    /// Induce a controlled throughput loss for a bounded time, delaying
    /// applications and processes.
    ThroughputLoss,
    /// Sustain the attack until crucial processes (filesystem, OS,
    /// database) crash.
    Crash,
}

/// The tunable attack parameters: what to transmit and from where.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackParams {
    /// Transmitted tone frequency.
    pub frequency: Frequency,
    /// Speaker-to-enclosure distance.
    pub distance: Distance,
}

impl AttackParams {
    /// The paper's best attack parameters (§4.4): 650 Hz at 1 cm.
    pub fn paper_best() -> Self {
        AttackParams {
            frequency: Frequency::from_hz(650.0),
            distance: Distance::from_cm(1.0),
        }
    }

    /// Same frequency, different distance.
    pub fn at_distance(self, distance: Distance) -> Self {
        AttackParams { distance, ..self }
    }

    /// Same distance, different frequency.
    pub fn at_frequency(self, frequency: Frequency) -> Self {
        AttackParams { frequency, ..self }
    }
}

/// The adversary: equipment plus methodology (frequency sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attacker {
    name: String,
    chain: SignalChain,
    sweep: SweepPlan,
    objective: AttackObjective,
}

impl Attacker {
    /// Builds an attacker from equipment.
    pub fn new(
        name: impl Into<String>,
        chain: SignalChain,
        sweep: SweepPlan,
        objective: AttackObjective,
    ) -> Self {
        Attacker {
            name: name.into(),
            chain,
            sweep,
            objective,
        }
    }

    /// The paper's attacker: a commercial AQ339 + TOA amplifier rig with
    /// the §4.1 sweep methodology.
    pub fn paper_attacker(objective: AttackObjective) -> Self {
        Attacker::new(
            "commercial rig (AQ339 + BG-2120)",
            SignalChain::paper_setup(Frequency::from_hz(650.0)),
            SweepPlan::paper_sweep(),
            objective,
        )
    }

    /// A better-funded adversary with a military-grade projector (§5
    /// "Effective Range").
    pub fn military_attacker(objective: AttackObjective) -> Self {
        Attacker::new(
            "military-grade projector",
            SignalChain::new(
                deepnote_acoustics::SineSource::new(Frequency::from_hz(650.0)),
                deepnote_acoustics::Amplifier::toa_bg2120(),
                Speaker::military_projector(),
            ),
            SweepPlan::paper_sweep(),
            objective,
        )
    }

    /// The attacker's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal chain (retune with [`SignalChain::retuned`]).
    pub fn chain(&self) -> &SignalChain {
        &self.chain
    }

    /// The sweep methodology.
    pub fn sweep(&self) -> &SweepPlan {
        &self.sweep
    }

    /// The stated objective.
    pub fn objective(&self) -> AttackObjective {
        self.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_best_params() {
        let p = AttackParams::paper_best();
        assert_eq!(p.frequency.hz(), 650.0);
        assert_eq!(p.distance.cm(), 1.0);
    }

    #[test]
    fn params_builders() {
        let p = AttackParams::paper_best()
            .at_distance(Distance::from_cm(15.0))
            .at_frequency(Frequency::from_hz(300.0));
        assert_eq!(p.distance.cm(), 15.0);
        assert_eq!(p.frequency.hz(), 300.0);
    }

    #[test]
    fn attackers_differ_in_power() {
        let commercial = Attacker::paper_attacker(AttackObjective::Crash);
        let military = Attacker::military_attacker(AttackObjective::Crash);
        let c_level = commercial.chain().emission().source_level.db();
        let m_level = military.chain().emission().source_level.db();
        assert!(m_level > c_level + 40.0);
        assert_eq!(commercial.objective(), AttackObjective::Crash);
    }
}
