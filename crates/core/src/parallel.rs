//! Parallel experiment execution.
//!
//! Every experiment in this workspace is a self-contained virtual-time
//! world (its own [`deepnote_sim::Clock`]), so independent operating
//! points — table rows, sweep frequencies, fleet members — can run on
//! real OS threads concurrently without sharing any state. [`run_all`]
//! fans a set of closures across scoped crossbeam threads and returns
//! their results in input order.

/// Runs every job on its own scoped thread and collects the results in
/// input order.
///
/// Panics in a job propagate to the caller (fail fast, like running the
/// jobs inline would).
///
/// # Example
///
/// ```
/// use deepnote_core::parallel::run_all;
///
/// let squares = run_all((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_all<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Runs every job on its own scoped thread, surfacing each job's panic
/// as an `Err` instead of tearing the caller down.
///
/// Results come back in input order; a panicking job yields `Err` with
/// the panic message while the other jobs complete normally. Use this
/// for campaign-style batches where one broken operating point should
/// not discard the rest of the matrix.
///
/// # Example
///
/// ```
/// use deepnote_core::parallel::try_run_all;
///
/// let results = try_run_all(vec![
///     Box::new(|| 2 + 2) as Box<dyn FnOnce() -> i32 + Send>,
///     Box::new(|| panic!("bad operating point")),
/// ]);
/// assert_eq!(results[0], Ok(4));
/// assert_eq!(results[1], Err("bad operating point".to_string()));
/// ```
pub fn try_run_all<T, F>(jobs: Vec<F>) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|payload| panic_message(payload.as_ref())))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::range;
    use crate::testbed::Testbed;
    use deepnote_structures::Scenario;

    #[test]
    fn preserves_input_order() {
        let results = run_all(
            (0..16)
                .map(|i| move || format!("job {i}"))
                .collect::<Vec<_>>(),
        );
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &format!("job {i}"));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let results: Vec<u32> = run_all(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn parallel_table1_matches_sequential() {
        // Each row is an isolated world: running rows concurrently must
        // give exactly the same table.
        let sequential = range::table1(2);
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let jobs: Vec<_> = range::paper_distances()
            .into_iter()
            .map(|d| {
                let tb = testbed.clone();
                move || range::fio_row(&tb, d, 2)
            })
            .collect();
        let parallel = run_all(jobs);
        assert_eq!(sequential, parallel);
    }

    #[test]
    #[should_panic(expected = "experiment thread panicked")]
    fn job_panics_propagate() {
        let _ = run_all(vec![|| -> u32 { panic!("boom") }]);
    }

    #[test]
    fn try_run_all_surfaces_panics_without_losing_siblings() {
        type Job = Box<dyn FnOnce() -> u32 + Send>;
        let jobs: Vec<Job> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("static message")),
            Box::new(|| panic!("formatted {}", 42)),
            Box::new(|| 4),
        ];
        let results = try_run_all(jobs);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1], Err("static message".to_string()));
        assert_eq!(results[2], Err("formatted 42".to_string()));
        assert_eq!(results[3], Ok(4));
    }

    #[test]
    fn try_run_all_empty_input_is_fine() {
        let results: Vec<Result<u32, String>> = try_run_all(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }
}
