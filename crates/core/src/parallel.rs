//! Parallel experiment execution.
//!
//! Every experiment in this workspace is a self-contained virtual-time
//! world (its own [`deepnote_sim::Clock`]), so independent operating
//! points — table rows, sweep frequencies, fleet members — can run on
//! real OS threads concurrently without sharing any state. [`run_all`]
//! fans a set of closures across scoped crossbeam threads and returns
//! their results in input order.

/// Runs every job on its own scoped thread and collects the results in
/// input order.
///
/// Panics in a job propagate to the caller (fail fast, like running the
/// jobs inline would).
///
/// # Example
///
/// ```
/// use deepnote_core::parallel::run_all;
///
/// let squares = run_all((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_all<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::range;
    use crate::testbed::Testbed;
    use deepnote_structures::Scenario;

    #[test]
    fn preserves_input_order() {
        let results = run_all(
            (0..16)
                .map(|i| move || format!("job {i}"))
                .collect::<Vec<_>>(),
        );
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &format!("job {i}"));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let results: Vec<u32> = run_all(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn parallel_table1_matches_sequential() {
        // Each row is an isolated world: running rows concurrently must
        // give exactly the same table.
        let sequential = range::table1(2);
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let jobs: Vec<_> = range::paper_distances()
            .into_iter()
            .map(|d| {
                let tb = testbed.clone();
                move || range::fio_row(&tb, d, 2)
            })
            .collect();
        let parallel = run_all(jobs);
        assert_eq!(sequential, parallel);
    }

    #[test]
    #[should_panic(expected = "experiment thread panicked")]
    fn job_panics_propagate() {
        let _ = run_all(vec![|| -> u32 { panic!("boom") }]);
    }
}
