//! Parallel experiment execution on a bounded, deterministic pool.
//!
//! Every experiment in this workspace is a self-contained virtual-time
//! world (its own [`deepnote_sim::Clock`]), so independent operating
//! points — table rows, sweep frequencies, fleet members, campaign
//! matrix cells — can run on real OS threads concurrently without
//! sharing any state. [`run_all`] and [`try_run_all`] fan a set of
//! closures across a bounded pool of scoped worker threads and return
//! their results in input order; [`run_chunked`] batches small jobs so
//! a 300-point sweep does not pay 300 dispatch round-trips.
//!
//! # Pool shape
//!
//! The pool spawns at most [`pool_width`] workers (never more than
//! there are jobs). Workers self-schedule: each steals the next
//! unclaimed chunk of the job list from a shared atomic cursor, so a
//! slow job never idles the rest of the pool behind it. The pool is
//! bounded — running a 300-cell matrix uses `pool_width()` OS threads,
//! not 300.
//!
//! # Determinism
//!
//! Scheduling order cannot affect results. Each job owns its entire
//! world: the simulation clock, RNG streams, and event queues are all
//! local to the closure, and nothing in this module passes data
//! between jobs. Results are written to per-job slots and read back in
//! input order, so the output is a pure function of the input jobs —
//! byte-identical whether the pool runs one worker
//! (`DEEPNOTE_THREADS=1`) or saturates every core.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable that overrides the worker count.
pub const THREADS_ENV: &str = "DEEPNOTE_THREADS";

/// Number of workers the pool will use: the `DEEPNOTE_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism.
pub fn pool_width() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_width(&v).unwrap_or_else(default_width),
        Err(_) => default_width(),
    }
}

/// Parses a thread-override value; `None` for anything that is not a
/// positive integer (the caller falls back to the host default).
fn parse_width(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the jobs on the pool and collects the results in input order.
///
/// Panics in a job propagate to the caller (fail fast, like running
/// the jobs inline would), with the job's panic message attached.
///
/// # Example
///
/// ```
/// use deepnote_core::parallel::run_all;
///
/// let squares = run_all((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_all<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_chunked(jobs, 1)
}

/// Like [`run_all`], but workers claim `chunk` consecutive jobs at a
/// time. Use this for large batches of small jobs (sweep points, table
/// rows) where per-job dispatch would dominate: a chunk costs one
/// cursor claim instead of `chunk`.
///
/// `run_chunked(jobs, 1)` is exactly [`run_all`]; results are in input
/// order for any chunk size.
pub fn run_chunked<T, F>(jobs: Vec<F>, chunk: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    dispatch(jobs, chunk)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(msg) => panic!("experiment thread panicked: {msg}"),
        })
        .collect()
}

/// Runs the jobs on the pool, surfacing each job's panic as an `Err`
/// instead of tearing the caller down.
///
/// Results come back in input order; a panicking job yields `Err` with
/// the panic message while the other jobs complete normally. Use this
/// for campaign-style batches where one broken operating point should
/// not discard the rest of the matrix.
///
/// The jobs are generic closures — no boxing required:
///
/// ```
/// use deepnote_core::parallel::try_run_all;
///
/// let results = try_run_all(
///     (1..=3)
///         .map(|i| move || if i == 2 { panic!("bad operating point") } else { i })
///         .collect::<Vec<_>>(),
/// );
/// assert_eq!(results[0], Ok(1));
/// assert_eq!(results[1], Err("bad operating point".to_string()));
/// assert_eq!(results[2], Ok(3));
/// ```
pub fn try_run_all<T, F>(jobs: Vec<F>) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    dispatch(jobs, 1)
}

/// The pool itself: claims chunks of the job list off a shared cursor,
/// runs each job under `catch_unwind`, and writes the outcome to the
/// job's own result slot.
fn dispatch<T, F>(jobs: Vec<F>, chunk: usize) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = chunk.max(1);
    let workers = pool_width().min(n.div_ceil(chunk));
    if workers <= 1 {
        // Single worker: no reason to leave the calling thread.
        return jobs.into_iter().map(run_caught).collect();
    }

    // Per-job slots. Each index is claimed by exactly one worker (the
    // cursor hands out disjoint ranges), so the per-slot locks are
    // uncontended; they exist to let safe code take the `FnOnce` out
    // and put the result in.
    let job_slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    let job = job_slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let outcome = run_caught(job);
                    *result_slots[i].lock().expect("result slot poisoned") = Some(outcome);
                }
            });
        }
    });

    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a job")
        })
        .collect()
}

fn run_caught<T, F: FnOnce() -> T>(job: F) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|payload| panic_message(payload.as_ref()))
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::range;
    use crate::testbed::Testbed;
    use deepnote_structures::Scenario;

    #[test]
    fn preserves_input_order() {
        let results = run_all(
            (0..16)
                .map(|i| move || format!("job {i}"))
                .collect::<Vec<_>>(),
        );
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &format!("job {i}"));
        }
    }

    #[test]
    fn preserves_input_order_under_contention() {
        // Completion order is deliberately the reverse of input order:
        // early jobs sleep longest, so late jobs finish first on any
        // multi-worker pool. The output must still be input-ordered.
        let n = 32;
        let results = run_all(
            (0..n)
                .map(|i| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_micros((n - i) as u64 * 50));
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(results, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let results: Vec<u32> = run_all(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn chunked_matches_unchunked() {
        let expected: Vec<u64> = (0..100).map(|i| i * i).collect();
        for chunk in [1, 3, 7, 100, 1000] {
            let jobs: Vec<_> = (0..100u64).map(|i| move || i * i).collect();
            assert_eq!(run_chunked(jobs, chunk), expected, "chunk = {chunk}");
        }
    }

    #[test]
    fn parallel_table1_matches_sequential() {
        // Each row is an isolated world: running rows concurrently must
        // give exactly the same table.
        let sequential = range::table1(2);
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        let jobs: Vec<_> = range::paper_distances()
            .into_iter()
            .map(|d| {
                let tb = testbed.clone();
                move || range::fio_row(&tb, d, 2)
            })
            .collect();
        let parallel = run_all(jobs);
        assert_eq!(sequential, parallel);
    }

    #[test]
    #[should_panic(expected = "experiment thread panicked")]
    fn job_panics_propagate() {
        let _ = run_all(vec![|| -> u32 { panic!("boom") }]);
    }

    #[test]
    fn try_run_all_surfaces_panics_without_losing_siblings() {
        type Job = Box<dyn FnOnce() -> u32 + Send>;
        let jobs: Vec<Job> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("static message")),
            Box::new(|| panic!("formatted {}", 42)),
            Box::new(|| 4),
        ];
        let results = try_run_all(jobs);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1], Err("static message".to_string()));
        assert_eq!(results[2], Err("formatted 42".to_string()));
        assert_eq!(results[3], Ok(4));
    }

    #[test]
    fn try_run_all_isolates_panics_beyond_pool_width() {
        // More jobs than any plausible pool width, with panics
        // scattered through the batch: every worker hits at least one
        // panicking job and must keep draining the queue afterwards.
        let results = try_run_all(
            (0..128u32)
                .map(|i| {
                    move || {
                        if i % 5 == 0 {
                            panic!("point {i} diverged");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(results.len(), 128);
        for (i, r) in results.iter().enumerate() {
            if i % 5 == 0 {
                assert_eq!(r, &Err(format!("point {i} diverged")));
            } else {
                assert_eq!(r, &Ok(i as u32));
            }
        }
    }

    #[test]
    fn try_run_all_empty_input_is_fine() {
        let results: Vec<Result<u32, String>> = try_run_all(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn width_parsing() {
        assert_eq!(parse_width("4"), Some(4));
        assert_eq!(parse_width(" 1 "), Some(1));
        assert_eq!(parse_width("0"), None);
        assert_eq!(parse_width("-2"), None);
        assert_eq!(parse_width("many"), None);
        assert_eq!(parse_width(""), None);
        assert!(pool_width() >= 1);
    }
}
