//! Defense evaluation (§5 "In-air Defenses").
//!
//! The paper lists candidate defenses from the in-air literature:
//! augmented feedback controllers, firmware changes, acoustically
//! absorbing materials, and vibration dampers — and notes that passive
//! treatments "may cause overheating" in a sealed vessel. Each
//! [`Defense`] here modifies the testbed or the drive, and
//! [`evaluate_defense`] quantifies the residual attack surface plus the
//! thermal side effect.

use crate::testbed::Testbed;
use crate::threat::AttackParams;
use deepnote_acoustics::Distance;
use deepnote_hdd::{
    steady_state, DiskOpKind, DriveGeometry, ServoModel, TimingModel, ToleranceModel,
};
use serde::{Deserialize, Serialize};

/// A deployable countermeasure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Defense {
    /// No defense (baseline).
    None,
    /// An acoustically absorbing viscoelastic liner on the container
    /// interior: scales the structural response down, but insulates —
    /// costing cooling headroom (paper refs. \[27\]\[41\]).
    AcousticLiner {
        /// Fraction of structural response remaining (0–1).
        remaining_response: f64,
    },
    /// Vibration-isolating drive mounts: scales the mount transfer.
    VibrationDampers {
        /// Isolation fraction (0–1); 0.8 = 80 % of vibration removed.
        isolation: f64,
    },
    /// An augmented feedback controller in the drive servo (Blue Note's
    /// firmware defense): higher loop bandwidth rejects more of the band.
    AugmentedServo {
        /// Bandwidth multiplier (> 1).
        bandwidth_factor: f64,
    },
}

impl Defense {
    /// The defenses evaluated by the `defense_eval` example and bench.
    pub fn catalog() -> Vec<Defense> {
        vec![
            Defense::None,
            Defense::AcousticLiner {
                remaining_response: 0.25,
            },
            Defense::VibrationDampers { isolation: 0.8 },
            Defense::AugmentedServo {
                bandwidth_factor: 2.5,
            },
        ]
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            Defense::None => "no defense".to_string(),
            Defense::AcousticLiner { remaining_response } => {
                format!(
                    "acoustic liner ({:.0}% damped)",
                    (1.0 - remaining_response) * 100.0
                )
            }
            Defense::VibrationDampers { isolation } => {
                format!("vibration dampers ({:.0}% isolation)", isolation * 100.0)
            }
            Defense::AugmentedServo { bandwidth_factor } => {
                format!("augmented servo ({bandwidth_factor:.1}x bandwidth)")
            }
        }
    }

    /// The cooling penalty of the defense in °C of extra drive
    /// temperature inside a sealed nitrogen vessel (passive treatments
    /// insulate; the servo change is free thermally).
    pub fn cooling_penalty_c(&self) -> f64 {
        match self {
            Defense::None => 0.0,
            Defense::AcousticLiner { remaining_response } => {
                // More absorption ⇒ more insulation.
                8.0 * (1.0 - remaining_response)
            }
            Defense::VibrationDampers { .. } => 1.5,
            Defense::AugmentedServo { .. } => 0.0,
        }
    }
}

/// The measured effect of a defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseOutcome {
    /// The defense evaluated.
    pub defense: Defense,
    /// Display label.
    pub label: String,
    /// Write throughput at the paper's best attack point, MB/s
    /// (22.7 = fully defended, 0 = still dead).
    pub write_mb_s_at_paper_point: f64,
    /// Maximum speaker distance (cm) at which the attack still causes a
    /// write blackout; `None` if no blackout at any distance ≥ 1 cm.
    pub blackout_reach_cm: Option<f64>,
    /// Thermal side effect, °C.
    pub cooling_penalty_c: f64,
}

/// Applies `defense` to the testbed/drive and measures what is left of
/// the attack.
pub fn evaluate_defense(base: &Testbed, defense: Defense) -> DefenseOutcome {
    let geo = DriveGeometry::barracuda_500gb();
    let timing = TimingModel::barracuda_500gb();
    let tol = ToleranceModel::typical();

    let (testbed, servo) = match defense {
        Defense::None => (base.clone(), ServoModel::typical()),
        Defense::AcousticLiner { remaining_response } => (
            base.clone().with_vibration_path(
                base.vibration_path()
                    .clone()
                    .with_structure_scaled(remaining_response),
            ),
            ServoModel::typical(),
        ),
        Defense::VibrationDampers { isolation } => (
            base.clone().with_vibration_path(
                base.vibration_path()
                    .clone()
                    .with_mount(base.vibration_path().mount().with_dampers(isolation)),
            ),
            ServoModel::typical(),
        ),
        Defense::AugmentedServo { bandwidth_factor } => (
            base.clone(),
            ServoModel::typical().with_bandwidth_scaled(bandwidth_factor),
        ),
    };

    let params = AttackParams::paper_best();
    let write_at = |distance_cm: f64| {
        let v = testbed.vibration_at(params.frequency, Distance::from_cm(distance_cm));
        steady_state(&geo, &timing, &servo, &tol, Some(&v), 8, DiskOpKind::Write)
    };

    let at_point = write_at(1.0);
    // Blackout reach: scan outward from 1 cm.
    let mut reach = None;
    let mut cm = 1.0;
    while cm <= 100.0 {
        if !write_at(cm).responsive() {
            reach = Some(cm);
        }
        cm += 1.0;
    }

    DefenseOutcome {
        defense,
        label: defense.label(),
        write_mb_s_at_paper_point: at_point.throughput_mb_s,
        blackout_reach_cm: reach,
        cooling_penalty_c: defense.cooling_penalty_c(),
    }
}

/// Evaluates the whole catalog against a testbed.
pub fn evaluate_catalog(base: &Testbed) -> Vec<DefenseOutcome> {
    Defense::catalog()
        .into_iter()
        .map(|d| evaluate_defense(base, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_structures::Scenario;

    fn base() -> Testbed {
        Testbed::paper_default(Scenario::PlasticTower)
    }

    #[test]
    fn baseline_is_vulnerable() {
        let outcome = evaluate_defense(&base(), Defense::None);
        assert_eq!(outcome.write_mb_s_at_paper_point, 0.0);
        let reach = outcome.blackout_reach_cm.unwrap();
        assert!((5.0..12.0).contains(&reach), "reach = {reach}");
        assert_eq!(outcome.cooling_penalty_c, 0.0);
    }

    #[test]
    fn every_defense_shrinks_the_blackout_reach() {
        let outcomes = evaluate_catalog(&base());
        let baseline_reach = outcomes[0].blackout_reach_cm.unwrap();
        for o in &outcomes[1..] {
            let reach = o.blackout_reach_cm.unwrap_or(0.0);
            assert!(
                reach < baseline_reach,
                "{}: reach {reach} vs baseline {baseline_reach}",
                o.label
            );
        }
    }

    #[test]
    fn liner_trades_protection_for_heat() {
        let outcome = evaluate_defense(
            &base(),
            Defense::AcousticLiner {
                remaining_response: 0.25,
            },
        );
        assert!(outcome.cooling_penalty_c > 5.0);
        // Point-blank (1 cm) the attack still wins — the residual is just
        // above the escalation point — but the blackout reach collapses
        // from ~8 cm to contact distance.
        assert!(
            outcome.blackout_reach_cm.unwrap_or(0.0) <= 2.0,
            "{outcome:?}"
        );
    }

    #[test]
    fn augmented_servo_helps_without_heat() {
        let outcome = evaluate_defense(
            &base(),
            Defense::AugmentedServo {
                bandwidth_factor: 2.5,
            },
        );
        assert_eq!(outcome.cooling_penalty_c, 0.0);
        let baseline = evaluate_defense(&base(), Defense::None);
        assert!(outcome.blackout_reach_cm.unwrap_or(0.0) < baseline.blackout_reach_cm.unwrap(),);
    }

    #[test]
    fn labels_are_descriptive() {
        assert!(Defense::VibrationDampers { isolation: 0.8 }
            .label()
            .contains("80"));
        assert!(Defense::AcousticLiner {
            remaining_response: 0.25
        }
        .label()
        .contains("75"));
    }
}
