//! Structural materials.
//!
//! Only the properties that matter for the vibration chain are modelled:
//! density (sets wall surface mass), internal damping (sets how sharply
//! structural modes ring), and a stiffness proxy used when deriving
//! plausible modal frequencies for containers.

use serde::{Deserialize, Serialize};

/// A structural material.
///
/// # Example
///
/// ```
/// use deepnote_structures::Material;
///
/// let al = Material::aluminum();
/// let hdpe = Material::hard_plastic();
/// assert!(al.density_kg_m3() > hdpe.density_kg_m3());
/// assert!(al.damping_ratio() < hdpe.damping_ratio()); // metal rings longer
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Material {
    name: String,
    density_kg_m3: f64,
    damping_ratio: f64,
    youngs_modulus_gpa: f64,
}

impl Material {
    /// Creates a material.
    ///
    /// # Panics
    ///
    /// Panics if density or Young's modulus is not positive, or damping is
    /// outside `(0, 1)`.
    pub fn new(
        name: impl Into<String>,
        density_kg_m3: f64,
        damping_ratio: f64,
        youngs_modulus_gpa: f64,
    ) -> Self {
        assert!(density_kg_m3 > 0.0, "density must be positive");
        assert!(
            damping_ratio > 0.0 && damping_ratio < 1.0,
            "damping ratio must be in (0, 1)"
        );
        assert!(youngs_modulus_gpa > 0.0, "Young's modulus must be positive");
        Material {
            name: name.into(),
            density_kg_m3,
            damping_ratio,
            youngs_modulus_gpa,
        }
    }

    /// Hard plastic (HDPE-like), the paper's Scenario 1–2 container.
    pub fn hard_plastic() -> Self {
        Material::new("hard plastic (HDPE)", 950.0, 0.05, 1.0)
    }

    /// Aluminum, the paper's Scenario 3 container.
    pub fn aluminum() -> Self {
        Material::new("aluminum", 2_700.0, 0.01, 69.0)
    }

    /// Steel, the material of real data-center pressure vessels (§5).
    pub fn steel() -> Self {
        Material::new("steel", 7_850.0, 0.008, 200.0)
    }

    /// An acoustically absorbing polymer liner (§5 "In-air Defenses",
    /// paper refs. \[27\]\[41\]): light and very lossy.
    pub fn polymer_liner() -> Self {
        Material::new("viscoelastic polymer liner", 1_100.0, 0.40, 0.05)
    }

    /// Material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Density in kg/m³.
    pub fn density_kg_m3(&self) -> f64 {
        self.density_kg_m3
    }

    /// Structural damping ratio ζ (fraction of critical damping).
    pub fn damping_ratio(&self) -> f64 {
        self.damping_ratio
    }

    /// Young's modulus in GPa (stiffness proxy).
    pub fn youngs_modulus_gpa(&self) -> f64 {
        self.youngs_modulus_gpa
    }

    /// Longitudinal sound speed in the material, m/s: `sqrt(E/ρ)`.
    pub fn sound_speed_m_s(&self) -> f64 {
        (self.youngs_modulus_gpa * 1e9 / self.density_kg_m3).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ordering() {
        let plastic = Material::hard_plastic();
        let al = Material::aluminum();
        let steel = Material::steel();
        assert!(plastic.density_kg_m3() < al.density_kg_m3());
        assert!(al.density_kg_m3() < steel.density_kg_m3());
        // Stiff metals carry sound faster than plastic.
        assert!(al.sound_speed_m_s() > 3.0 * plastic.sound_speed_m_s());
    }

    #[test]
    fn liner_is_lossy() {
        assert!(
            Material::polymer_liner().damping_ratio()
                > 5.0 * Material::hard_plastic().damping_ratio()
        );
    }

    #[test]
    fn sound_speed_formula() {
        // Steel: sqrt(200e9 / 7850) ≈ 5048 m/s.
        let c = Material::steel().sound_speed_m_s();
        assert!((5_000.0..5_100.0).contains(&c), "c = {c}");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_nonpositive_density() {
        Material::new("x", 0.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        Material::new("x", 1.0, 1.5, 1.0);
    }
}
