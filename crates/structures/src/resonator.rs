//! Second-order structural resonators.
//!
//! Rigid assemblies vibrate preferentially at their natural frequencies
//! (§2.1 of the paper, citing Halliday & Resnick). Each [`Resonator`] is a
//! standard second-order mode with centre frequency `f0`, quality factor
//! `Q`, and peak gain; a [`ResonatorBank`] sums the magnitude responses of
//! several modes plus a broadband floor. The bank is the frequency-
//! selective element that turns a flat acoustic drive into the paper's
//! 300 Hz–1.7 kHz vulnerable band.

use deepnote_acoustics::Frequency;
use serde::{Deserialize, Serialize};

/// A single structural mode.
///
/// The magnitude response is the classic resonance curve
/// `|H(f)| = gain / sqrt((1 − r²)² + (r/Q)²)` with `r = f/f0`, normalized
/// so that the response *at* `f0` equals `gain` exactly.
///
/// # Example
///
/// ```
/// use deepnote_structures::Resonator;
/// use deepnote_acoustics::Frequency;
///
/// let mode = Resonator::new(650.0, 2.0, 4.0);
/// let peak = mode.response(Frequency::from_hz(650.0));
/// let off = mode.response(Frequency::from_hz(6_500.0));
/// assert!((peak - 4.0).abs() < 1e-12);
/// assert!(off < 0.1 * peak);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resonator {
    f0_hz: f64,
    q: f64,
    gain: f64,
}

impl Resonator {
    /// Creates a mode at `f0_hz` with quality factor `q` and peak gain
    /// `gain`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not positive.
    pub fn new(f0_hz: f64, q: f64, gain: f64) -> Self {
        assert!(f0_hz > 0.0, "resonant frequency must be positive");
        assert!(q > 0.0, "Q must be positive");
        assert!(gain > 0.0, "gain must be positive");
        Resonator { f0_hz, q, gain }
    }

    /// Centre frequency in Hz.
    pub fn f0_hz(&self) -> f64 {
        self.f0_hz
    }

    /// Quality factor.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Peak gain (response at `f0`).
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Magnitude response at `f`, equal to `gain` at `f0`.
    pub fn response(&self, f: Frequency) -> f64 {
        let r = f.hz() / self.f0_hz;
        let denom = ((1.0 - r * r).powi(2) + (r / self.q).powi(2)).sqrt();
        // At r = 1 the denominator is 1/Q; normalize so peak == gain.
        self.gain * (1.0 / self.q) / denom.max(1e-12)
    }
}

/// A sum of structural modes plus a broadband floor.
///
/// # Example
///
/// ```
/// use deepnote_structures::{Resonator, ResonatorBank};
/// use deepnote_acoustics::Frequency;
///
/// let bank = ResonatorBank::new(0.1)
///     .with_mode(Resonator::new(400.0, 2.0, 3.0))
///     .with_mode(Resonator::new(900.0, 2.5, 2.0));
/// assert!(bank.response(Frequency::from_hz(400.0)) > 2.5);
/// assert!(bank.response(Frequency::from_khz(10.0)) < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResonatorBank {
    floor: f64,
    modes: Vec<Resonator>,
}

impl ResonatorBank {
    /// Creates an empty bank with a broadband floor gain.
    ///
    /// # Panics
    ///
    /// Panics if `floor` is negative.
    pub fn new(floor: f64) -> Self {
        assert!(floor >= 0.0, "floor gain must be non-negative");
        ResonatorBank {
            floor,
            modes: Vec::new(),
        }
    }

    /// Adds a mode (builder style).
    pub fn with_mode(mut self, mode: Resonator) -> Self {
        self.modes.push(mode);
        self
    }

    /// Adds a mode in place.
    pub fn push_mode(&mut self, mode: Resonator) {
        self.modes.push(mode);
    }

    /// The modes in the bank.
    pub fn modes(&self) -> &[Resonator] {
        &self.modes
    }

    /// The broadband floor gain.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Total magnitude response at `f`: floor + Σ mode responses.
    pub fn response(&self, f: Frequency) -> f64 {
        self.floor + self.modes.iter().map(|m| m.response(f)).sum::<f64>()
    }

    /// Scales every mode gain and the floor by `factor` — used by defenses
    /// (dampers reduce structural gain).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn scaled(&self, factor: f64) -> ResonatorBank {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        ResonatorBank {
            floor: self.floor * factor,
            modes: self
                .modes
                .iter()
                .map(|m| Resonator::new(m.f0_hz, m.q, (m.gain * factor).max(1e-12)))
                .collect(),
        }
    }

    /// Returns a copy with every mode's centre frequency scaled by
    /// `factor` — structural stiffness changes (e.g. a plastic container
    /// warming up) shift all modes together, since `f₀ ∝ √(E)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_frequencies_scaled(&self, factor: f64) -> ResonatorBank {
        assert!(factor > 0.0, "frequency scale must be positive");
        ResonatorBank {
            floor: self.floor,
            modes: self
                .modes
                .iter()
                .map(|m| Resonator::new(m.f0_hz * factor, m.q, m.gain))
                .collect(),
        }
    }

    /// The frequency (searched over `lo..hi` in `step_hz` increments) with
    /// the strongest response, or `None` for an empty search range.
    pub fn peak_frequency(&self, lo: Frequency, hi: Frequency, step_hz: f64) -> Option<Frequency> {
        assert!(step_hz > 0.0, "step must be positive");
        let mut best: Option<(f64, f64)> = None;
        let mut hz = lo.hz();
        while hz <= hi.hz() {
            let resp = self.response(Frequency::from_hz(hz));
            if best.is_none_or(|(_, b)| resp > b) {
                best = Some((hz, resp));
            }
            hz += step_hz;
        }
        best.map(|(hz, _)| Frequency::from_hz(hz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn peak_at_f0_has_configured_gain() {
        let r = Resonator::new(650.0, 3.0, 5.0);
        assert!((r.response(Frequency::from_hz(650.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn higher_q_is_narrower() {
        let wide = Resonator::new(650.0, 1.0, 1.0);
        let narrow = Resonator::new(650.0, 10.0, 1.0);
        // Same peak, but at 1.5x f0 the narrow mode is much further down.
        let f = Frequency::from_hz(975.0);
        assert!(narrow.response(f) < wide.response(f));
    }

    #[test]
    fn asymmetric_tails() {
        // Below resonance the mode follows the drive with its static
        // compliance (≈ gain/Q); above resonance it is mass-controlled and
        // falls as 1/f².
        let r = Resonator::new(650.0, 2.0, 1.0);
        let below = r.response(Frequency::from_hz(65.0));
        let above = r.response(Frequency::from_hz(6_500.0));
        assert!((below - 0.5).abs() < 0.02, "below = {below}");
        assert!(above < 0.01, "above = {above}");
    }

    #[test]
    fn bank_sums_modes_and_floor() {
        let bank = ResonatorBank::new(0.5)
            .with_mode(Resonator::new(400.0, 2.0, 3.0))
            .with_mode(Resonator::new(800.0, 2.0, 2.0));
        let at_400 = bank.response(Frequency::from_hz(400.0));
        assert!(at_400 > 3.5, "at_400 = {at_400}"); // 0.5 floor + 3 peak + tail
        assert_eq!(bank.modes().len(), 2);
    }

    #[test]
    fn scaled_bank_shrinks_uniformly() {
        let bank = ResonatorBank::new(0.4).with_mode(Resonator::new(650.0, 2.0, 4.0));
        let damped = bank.scaled(0.25);
        let f = Frequency::from_hz(650.0);
        assert!((damped.response(f) / bank.response(f) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn frequency_scaling_shifts_every_mode() {
        let bank = ResonatorBank::new(0.1)
            .with_mode(Resonator::new(400.0, 3.0, 2.0))
            .with_mode(Resonator::new(700.0, 3.0, 5.0));
        let shifted = bank.with_frequencies_scaled(0.9);
        assert!((shifted.modes()[0].f0_hz() - 360.0).abs() < 1e-9);
        assert!((shifted.modes()[1].f0_hz() - 630.0).abs() < 1e-9);
        // Peak gains preserved at the new centres.
        assert!(
            (shifted.response(Frequency::from_hz(630.0))
                - bank.response(Frequency::from_hz(700.0)))
            .abs()
                < 0.2
        );
    }

    #[test]
    fn peak_frequency_finds_strongest_mode() {
        let bank = ResonatorBank::new(0.1)
            .with_mode(Resonator::new(400.0, 3.0, 2.0))
            .with_mode(Resonator::new(700.0, 3.0, 5.0));
        // The analytic maximum of a Q = 3 mode sits at
        // f0·sqrt(1 − 1/(2Q²)) ≈ 0.97·f0, so allow a little slack.
        let peak = bank
            .peak_frequency(Frequency::from_hz(100.0), Frequency::from_khz(2.0), 10.0)
            .unwrap();
        assert!((peak.hz() - 700.0).abs() <= 40.0, "peak = {peak}");
    }

    #[test]
    fn empty_bank_is_flat_floor() {
        let bank = ResonatorBank::new(0.3);
        assert_eq!(bank.response(Frequency::from_hz(100.0)), 0.3);
        assert_eq!(bank.response(Frequency::from_khz(10.0)), 0.3);
    }

    proptest! {
        /// Resonator response is positive and (for underdamped modes) is
        /// essentially maximal at f0 — the true analytic maximum sits at
        /// `f0·sqrt(1 − 1/(2Q²))` and exceeds the f0 value by at most
        /// `1/sqrt(1 − 1/(4Q²))`, which is < 1.16 for Q ≥ 1.
        #[test]
        fn peak_dominates(f0 in 100.0f64..2_000.0, q in 1.0f64..10.0, g in 0.1f64..10.0, probe in 50.0f64..17_000.0) {
            let r = Resonator::new(f0, q, g);
            let at_peak = r.response(Frequency::from_hz(f0));
            let elsewhere = r.response(Frequency::from_hz(probe));
            prop_assert!(elsewhere > 0.0);
            prop_assert!(elsewhere <= at_peak * 1.16);
        }
    }
}
