//! The composed vibration path: received sound → drive chassis motion.
//!
//! `displacement = p · wall(f) · container(f) · mount(f) · η`
//!
//! where `p` is the received acoustic pressure at the enclosure, `wall(f)`
//! is the enclosure diaphragm admittance (µm/Pa), `container(f)` and
//! `mount(f)` are dimensionless structural resonator gains, and `η` is a
//! coupling efficiency calibrated once against the paper's measured
//! operating point (650 Hz, Scenario 2, 1 cm → total blackout).

use crate::enclosure::Enclosure;
use crate::mount::Mount;
use crate::resonator::ResonatorBank;
use deepnote_acoustics::{Frequency, Spl};
use serde::{Deserialize, Serialize};

/// The full acoustic-to-mechanical coupling path for one victim drive.
///
/// # Example
///
/// ```
/// use deepnote_structures::prelude::*;
/// use deepnote_acoustics::{Frequency, Spl};
///
/// let path = Scenario::PlasticTower.vibration_path();
/// let d = path.drive_displacement_um(Frequency::from_hz(650.0), Spl::water_db(140.0));
/// assert!(d > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VibrationPath {
    enclosure: Enclosure,
    container_modes: ResonatorBank,
    mount: Mount,
    coupling_efficiency: f64,
}

impl VibrationPath {
    /// Default coupling efficiency, calibrated so the paper's operating
    /// point (Scenario 2, 650 Hz, 140 dB at 1 cm) produces a blackout-level
    /// off-track displacement in the drive model (residual ≈ 85 nm after
    /// servo rejection, ≈ 5.7× the read fault threshold).
    pub const DEFAULT_COUPLING: f64 = 0.27;

    /// Creates a path.
    ///
    /// # Panics
    ///
    /// Panics if `coupling_efficiency` is not in `(0, 10]`.
    pub fn new(
        enclosure: Enclosure,
        container_modes: ResonatorBank,
        mount: Mount,
        coupling_efficiency: f64,
    ) -> Self {
        assert!(
            coupling_efficiency > 0.0 && coupling_efficiency <= 10.0,
            "coupling efficiency must be in (0, 10], got {coupling_efficiency}"
        );
        VibrationPath {
            enclosure,
            container_modes,
            mount,
            coupling_efficiency,
        }
    }

    /// The enclosure.
    pub fn enclosure(&self) -> &Enclosure {
        &self.enclosure
    }

    /// The container's structural mode bank.
    pub fn container_modes(&self) -> &ResonatorBank {
        &self.container_modes
    }

    /// The drive mount.
    pub fn mount(&self) -> &Mount {
        &self.mount
    }

    /// Coupling efficiency `η`.
    pub fn coupling_efficiency(&self) -> f64 {
        self.coupling_efficiency
    }

    /// Replaces the mount (e.g. to fit dampers).
    pub fn with_mount(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Scales the structural response (e.g. absorbing liner defense).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_structure_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.container_modes = self.container_modes.scaled(factor);
        self
    }

    /// Dimensionless structural gain at `f` (container × mount).
    pub fn structural_gain(&self, f: Frequency) -> f64 {
        self.container_modes.response(f) * self.mount.transfer(f)
    }

    /// Displacement amplitude (µm) induced at the drive chassis by a
    /// received level `incident` at frequency `f`.
    ///
    /// Returns zero for a 0 Hz "signal" (static pressure).
    pub fn drive_displacement_um(&self, f: Frequency, incident: Spl) -> f64 {
        if f.hz() <= 0.0 {
            return 0.0;
        }
        let p = incident.pressure_pa();
        p * self.enclosure.wall_displacement_um_per_pa(f)
            * self.structural_gain(f)
            * self.coupling_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use crate::resonator::Resonator;
    use deepnote_acoustics::Medium;
    use proptest::prelude::*;

    fn simple_path() -> VibrationPath {
        VibrationPath::new(
            Enclosure::paper_plastic(),
            ResonatorBank::new(0.3).with_mode(Resonator::new(650.0, 2.0, 3.0)),
            Mount::direct_on_floor(),
            1.0,
        )
    }

    #[test]
    fn displacement_scales_linearly_with_pressure() {
        let path = simple_path();
        let f = Frequency::from_hz(650.0);
        let d1 = path.drive_displacement_um(f, Spl::water_db(120.0));
        let d2 = path.drive_displacement_um(f, Spl::water_db(140.0)); // +20 dB = ×10 pressure
        assert!((d2 / d1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn resonance_amplifies() {
        let path = simple_path();
        let spl = Spl::water_db(140.0);
        let on = path.drive_displacement_um(Frequency::from_hz(650.0), spl);
        let off = path.drive_displacement_um(Frequency::from_khz(5.0), spl);
        assert!(on > 10.0 * off, "on = {on}, off = {off}");
    }

    #[test]
    fn zero_hz_produces_no_vibration() {
        let path = simple_path();
        assert_eq!(
            path.drive_displacement_um(Frequency::from_hz(0.0), Spl::water_db(140.0)),
            0.0
        );
    }

    #[test]
    fn damped_mount_reduces_displacement() {
        let path = simple_path();
        let damped = path.clone().with_mount(path.mount().with_dampers(0.9));
        let f = Frequency::from_hz(650.0);
        let spl = Spl::water_db(140.0);
        assert!(damped.drive_displacement_um(f, spl) < 0.2 * path.drive_displacement_um(f, spl));
    }

    #[test]
    fn structure_scaling_reduces_displacement() {
        let path = simple_path();
        let lined = path.clone().with_structure_scaled(0.1);
        let f = Frequency::from_hz(650.0);
        let spl = Spl::water_db(140.0);
        let ratio = lined.drive_displacement_um(f, spl) / path.drive_displacement_um(f, spl);
        assert!((ratio - 0.1).abs() < 1e-9);
    }

    #[test]
    fn heavier_enclosure_attenuates() {
        let plastic = simple_path();
        let steel = VibrationPath::new(
            Enclosure::new(Material::steel(), 0.025, Medium::Nitrogen),
            plastic.container_modes().clone(),
            plastic.mount().clone(),
            1.0,
        );
        let f = Frequency::from_hz(650.0);
        let spl = Spl::water_db(140.0);
        assert!(steel.drive_displacement_um(f, spl) < 0.05 * plastic.drive_displacement_um(f, spl));
    }

    proptest! {
        /// Displacement is finite and non-negative across band and level.
        #[test]
        fn displacement_well_behaved(hz in 1.0f64..20_000.0, db in 60.0f64..220.0) {
            let path = simple_path();
            let d = path.drive_displacement_um(Frequency::from_hz(hz), Spl::water_db(db));
            prop_assert!(d.is_finite());
            prop_assert!(d >= 0.0);
        }

        /// Louder is never less displacement.
        #[test]
        fn monotone_in_level(hz in 1.0f64..20_000.0, db in 60.0f64..200.0) {
            let path = simple_path();
            let f = Frequency::from_hz(hz);
            let lo = path.drive_displacement_um(f, Spl::water_db(db));
            let hi = path.drive_displacement_um(f, Spl::water_db(db + 10.0));
            prop_assert!(hi > lo);
        }
    }
}
