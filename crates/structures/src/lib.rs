//! Mechanical structures between the water and the victim drive.
//!
//! The paper attributes the attack to a chain of mechanical couplings
//! (§2.1 "Causality"): incident acoustic pressure shakes the enclosure
//! wall, the wall excites the container and rack structure, structural
//! resonances amplify specific frequencies, and the resulting vibration at
//! the drive chassis jostles the read/write head. This crate models that
//! chain:
//!
//! * [`Material`] — wall/structure materials with density and damping
//!   ([`material`]).
//! * [`Enclosure`] — a submerged container: wall surface mass sets how
//!   much the wall moves per pascal of incident pressure, and the classic
//!   mass-law transmission loss is exposed too ([`enclosure`]).
//! * [`Resonator`] / [`ResonatorBank`] — second-order modal responses that
//!   give the container + rack + drive assembly its band-pass character
//!   ([`resonator`]).
//! * [`Mount`] — how the drive is held: directly on the container floor or
//!   in a Supermicro-style hot-swap tower ([`mount`]).
//! * [`VibrationPath`] — the composed path from received SPL to
//!   displacement amplitude at the drive chassis ([`path`]), with the
//!   paper's three experimental scenarios as presets ([`scenario`]).
//!
//! # Example
//!
//! ```
//! use deepnote_structures::prelude::*;
//! use deepnote_acoustics::{Frequency, Spl};
//!
//! let path = Scenario::PlasticTower.vibration_path();
//! let in_band = path.drive_displacement_um(Frequency::from_hz(650.0), Spl::water_db(140.0));
//! let out_of_band = path.drive_displacement_um(Frequency::from_khz(8.0), Spl::water_db(140.0));
//! assert!(in_band > 20.0 * out_of_band);
//! ```

pub mod enclosure;
pub mod material;
pub mod mount;
pub mod path;
pub mod resonator;
pub mod scenario;

pub use enclosure::Enclosure;
pub use material::Material;
pub use mount::Mount;
pub use path::VibrationPath;
pub use resonator::{Resonator, ResonatorBank};
pub use scenario::Scenario;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::enclosure::Enclosure;
    pub use crate::material::Material;
    pub use crate::mount::Mount;
    pub use crate::path::VibrationPath;
    pub use crate::resonator::{Resonator, ResonatorBank};
    pub use crate::scenario::Scenario;
}
