//! Submerged enclosures.
//!
//! The wall of a submerged container is driven by the incident acoustic
//! pressure. Two views of the wall matter:
//!
//! * **As a barrier** (classic mass law): how much *acoustic* energy makes
//!   it into the internal gas. In water this is tiny at the paper's
//!   frequencies — the walls are nearly transparent — which is why the
//!   attack does not need to "get sound inside" at all.
//! * **As a diaphragm**: the wall itself moves. In the mass-controlled
//!   regime its displacement per pascal is `x = p / (ω² m_s)` where `m_s`
//!   is the surface mass. That structural motion is what couples into the
//!   rack and drive.

use crate::material::Material;
use deepnote_acoustics::{Frequency, Medium};
use serde::{Deserialize, Serialize};

/// A submerged container with walls of a given material and thickness,
/// filled with a gas.
///
/// # Example
///
/// ```
/// use deepnote_structures::{Enclosure, Material};
/// use deepnote_acoustics::{Frequency, Medium};
///
/// let plastic = Enclosure::paper_plastic();
/// let metal = Enclosure::paper_aluminum();
/// // The aluminum wall is heavier, so it moves less per pascal.
/// let f = Frequency::from_hz(650.0);
/// assert!(metal.wall_displacement_um_per_pa(f) < plastic.wall_displacement_um_per_pa(f));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Enclosure {
    material: Material,
    wall_thickness_m: f64,
    internal: Medium,
}

impl Enclosure {
    /// Creates an enclosure.
    ///
    /// # Panics
    ///
    /// Panics if the wall thickness is not positive or implausibly thick
    /// (> 0.5 m).
    pub fn new(material: Material, wall_thickness_m: f64, internal: Medium) -> Self {
        assert!(
            wall_thickness_m > 0.0 && wall_thickness_m <= 0.5,
            "wall thickness must be in (0, 0.5] m, got {wall_thickness_m}"
        );
        Enclosure {
            material,
            wall_thickness_m,
            internal,
        }
    }

    /// The paper's hard-plastic container (Scenarios 1 and 2): ~5 mm wall,
    /// air filled.
    pub fn paper_plastic() -> Self {
        Enclosure::new(Material::hard_plastic(), 0.005, Medium::Air)
    }

    /// The paper's aluminum container (Scenario 3): ~3 mm wall, air
    /// filled.
    pub fn paper_aluminum() -> Self {
        Enclosure::new(Material::aluminum(), 0.003, Medium::Air)
    }

    /// A Project Natick-style vessel: thick steel, nitrogen filled (§5).
    pub fn natick_steel() -> Self {
        Enclosure::new(Material::steel(), 0.025, Medium::Nitrogen)
    }

    /// Wall material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Wall thickness in metres.
    pub fn wall_thickness_m(&self) -> f64 {
        self.wall_thickness_m
    }

    /// Internal fill gas.
    pub fn internal(&self) -> Medium {
        self.internal
    }

    /// Wall surface mass `m_s = ρ·t` in kg/m².
    pub fn surface_mass_kg_m2(&self) -> f64 {
        self.material.density_kg_m3() * self.wall_thickness_m
    }

    /// Wall displacement amplitude per pascal of incident pressure, in
    /// µm/Pa, mass-controlled regime: `x/p = 1/(ω² m_s)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is zero (static pressure does not vibrate the wall).
    pub fn wall_displacement_um_per_pa(&self, f: Frequency) -> f64 {
        assert!(f.hz() > 0.0, "wall displacement undefined at 0 Hz");
        let omega = f.angular();
        1e6 / (omega * omega * self.surface_mass_kg_m2())
    }

    /// Mass-law transmission loss (dB) into the internal gas for a wave
    /// arriving through water: `TL = 10·log10(1 + (π f m_s / ρc)²)` plus
    /// the water→gas interface mismatch. Provided for §5 analysis; the
    /// attack path does not go through the gas.
    pub fn acoustic_transmission_loss_db(&self, f: Frequency, outside_impedance_rayl: f64) -> f64 {
        assert!(outside_impedance_rayl > 0.0, "impedance must be positive");
        let x = std::f64::consts::PI * f.hz() * self.surface_mass_kg_m2() / outside_impedance_rayl;
        let mass_law = (1.0 + x * x).log10() * 10.0;
        // Pressure transmission across a severe impedance drop
        // (water → gas): |T| = 2 Z2 / (Z1 + Z2).
        let z1 = outside_impedance_rayl;
        let z2 = self.internal.impedance_rayl();
        let t = 2.0 * z2 / (z1 + z2);
        mass_law - 20.0 * t.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::WaterConditions;
    use proptest::prelude::*;

    #[test]
    fn surface_masses() {
        // Plastic: 950 * 0.005 = 4.75 kg/m²; aluminum: 2700 * 0.003 = 8.1.
        assert!((Enclosure::paper_plastic().surface_mass_kg_m2() - 4.75).abs() < 1e-12);
        assert!((Enclosure::paper_aluminum().surface_mass_kg_m2() - 8.1).abs() < 1e-12);
    }

    #[test]
    fn wall_displacement_reference_value() {
        // Plastic at 650 Hz with 1 Pa: 1/( (2π·650)² · 4.75 ) ≈ 1.26e-8 m.
        let d = Enclosure::paper_plastic().wall_displacement_um_per_pa(Frequency::from_hz(650.0));
        assert!((d - 0.0126).abs() / 0.0126 < 0.01, "d = {d}");
    }

    #[test]
    fn heavier_wall_moves_less() {
        let f = Frequency::from_hz(650.0);
        let plastic = Enclosure::paper_plastic().wall_displacement_um_per_pa(f);
        let steel = Enclosure::natick_steel().wall_displacement_um_per_pa(f);
        assert!(steel < plastic / 20.0);
    }

    #[test]
    fn acoustic_tl_dominated_by_interface_at_low_f() {
        let water = Medium::Water(WaterConditions::tank_freshwater());
        let encl = Enclosure::paper_plastic();
        let tl =
            encl.acoustic_transmission_loss_db(Frequency::from_hz(650.0), water.impedance_rayl());
        // Water→air interface alone is ~66 dB of pressure loss... the wall
        // adds almost nothing at 650 Hz. Yet the *structural* path has no
        // such barrier — the point of the paper.
        assert!(tl > 50.0, "tl = {tl}");
        let mass_only = {
            let x =
                std::f64::consts::PI * 650.0 * encl.surface_mass_kg_m2() / water.impedance_rayl();
            (1.0 + x * x).log10() * 10.0
        };
        assert!(mass_only < 0.1, "mass_only = {mass_only}");
    }

    #[test]
    #[should_panic(expected = "0 Hz")]
    fn zero_hz_rejected() {
        Enclosure::paper_plastic().wall_displacement_um_per_pa(Frequency::from_hz(0.0));
    }

    #[test]
    #[should_panic(expected = "thickness")]
    fn silly_thickness_rejected() {
        Enclosure::new(Material::steel(), 2.0, Medium::Air);
    }

    proptest! {
        /// Wall displacement falls with frequency squared.
        #[test]
        fn displacement_falls_as_f_squared(f in 50.0f64..8_000.0) {
            let e = Enclosure::paper_plastic();
            let d1 = e.wall_displacement_um_per_pa(Frequency::from_hz(f));
            let d2 = e.wall_displacement_um_per_pa(Frequency::from_hz(2.0 * f));
            prop_assert!((d1 / d2 - 4.0).abs() < 1e-6);
        }

        /// Transmission loss grows with wall thickness.
        #[test]
        fn tl_grows_with_thickness(t1 in 0.001f64..0.1, scale in 1.1f64..4.0) {
            let water = Medium::Water(WaterConditions::tank_freshwater());
            let thin = Enclosure::new(Material::steel(), t1, Medium::Air);
            let thick = Enclosure::new(Material::steel(), (t1 * scale).min(0.5), Medium::Air);
            let f = Frequency::from_khz(5.0);
            prop_assert!(
                thick.acoustic_transmission_loss_db(f, water.impedance_rayl())
                    >= thin.acoustic_transmission_loss_db(f, water.impedance_rayl())
            );
        }
    }
}
