//! Drive mounting structures.
//!
//! How the drive is held changes how container-wall motion reaches it. The
//! paper compares a drive lying directly on the container floor
//! (Scenario 1) against one held in a Supermicro CSE-M35TQB 5-in-3 hot-swap
//! tower simulating a rack (Scenarios 2 and 3). The tower's sheet-metal
//! chassis and spring-loaded trays add their own resonances and, in the
//! paper's measurements, *amplify* the attack in the vulnerable band.

use crate::resonator::{Resonator, ResonatorBank};
use serde::{Deserialize, Serialize};

/// A drive mount: its mechanical transfer is a [`ResonatorBank`] applied
/// on top of the enclosure wall motion.
///
/// # Example
///
/// ```
/// use deepnote_structures::Mount;
/// use deepnote_acoustics::Frequency;
///
/// let floor = Mount::direct_on_floor();
/// let tower = Mount::supermicro_tower(1);
/// // The tower resonates near its tray modes; the bare floor does not.
/// let f = Frequency::from_hz(650.0);
/// assert!(tower.transfer(f) > floor.transfer(f));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mount {
    name: String,
    bank: ResonatorBank,
}

impl Mount {
    /// Creates a mount from a name and transfer bank.
    pub fn new(name: impl Into<String>, bank: ResonatorBank) -> Self {
        Mount {
            name: name.into(),
            bank,
        }
    }

    /// Drive resting directly on the container floor (Scenario 1): decent
    /// broadband contact coupling, one mild slab mode.
    pub fn direct_on_floor() -> Self {
        Mount::new(
            "direct on container floor",
            ResonatorBank::new(0.55).with_mode(Resonator::new(450.0, 1.6, 0.9)),
        )
    }

    /// A Supermicro CSE-M35TQB 5-in-3 hot-swap tower (Scenarios 2–3),
    /// holding the drive in `slot` (0 = bottom). Sheet-metal tray modes
    /// amplify the mid band; higher slots sway slightly more.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not one of the tower's 5 bays (0–4).
    pub fn supermicro_tower(slot: usize) -> Self {
        assert!(slot < 5, "CSE-M35TQB has 5 bays (slot 0..=4), got {slot}");
        let sway = 1.0 + 0.06 * slot as f64;
        Mount::new(
            format!("Supermicro CSE-M35TQB tower, slot {slot}"),
            ResonatorBank::new(0.45)
                .with_mode(Resonator::new(380.0, 1.9, 1.1 * sway))
                .with_mode(Resonator::new(700.0, 1.7, 1.5 * sway))
                .with_mode(Resonator::new(1_250.0, 2.2, 0.9 * sway)),
        )
    }

    /// Mount name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mount's resonator bank.
    pub fn bank(&self) -> &ResonatorBank {
        &self.bank
    }

    /// Mechanical transfer gain at `f`.
    pub fn transfer(&self, f: deepnote_acoustics::Frequency) -> f64 {
        self.bank.response(f)
    }

    /// A copy of this mount with vibration dampers fitted (defense, §5):
    /// the transfer bank scaled by `1 - isolation` .
    ///
    /// # Panics
    ///
    /// Panics if `isolation` is outside `[0, 1)`.
    pub fn with_dampers(&self, isolation: f64) -> Mount {
        assert!(
            (0.0..1.0).contains(&isolation),
            "isolation must be in [0, 1), got {isolation}"
        );
        Mount {
            name: format!("{} + dampers({isolation:.2})", self.name),
            bank: self.bank.scaled(1.0 - isolation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Frequency;

    #[test]
    fn tower_amplifies_mid_band() {
        let tower = Mount::supermicro_tower(1);
        let f = Frequency::from_hz(700.0);
        assert!(tower.transfer(f) > 1.5, "transfer = {}", tower.transfer(f));
        // Out of band it settles toward the floor gain.
        assert!(tower.transfer(Frequency::from_khz(10.0)) < 0.8);
    }

    #[test]
    fn higher_slots_sway_more() {
        let f = Frequency::from_hz(700.0);
        let bottom = Mount::supermicro_tower(0).transfer(f);
        let top = Mount::supermicro_tower(4).transfer(f);
        assert!(top > bottom);
    }

    #[test]
    #[should_panic(expected = "5 bays")]
    fn slot_out_of_range_panics() {
        Mount::supermicro_tower(5);
    }

    #[test]
    fn dampers_reduce_transfer() {
        let raw = Mount::supermicro_tower(1);
        let damped = raw.with_dampers(0.8);
        let f = Frequency::from_hz(700.0);
        assert!((damped.transfer(f) / raw.transfer(f) - 0.2).abs() < 1e-9);
        assert!(damped.name().contains("dampers"));
    }

    #[test]
    #[should_panic(expected = "isolation")]
    fn full_isolation_is_invalid() {
        Mount::supermicro_tower(0).with_dampers(1.0);
    }
}
