//! The paper's three experimental scenarios (Figure 1).
//!
//! * **Scenario 1** — the drive lies directly on the bottom of a hard
//!   plastic container.
//! * **Scenario 2** — the drive is held in the second level from the
//!   bottom of a Supermicro CSE-M35TQB 5-in-3 hot-swap tower inside the
//!   plastic container (the paper's "more realistic" rack stand-in, used
//!   for Tables 1–3).
//! * **Scenario 3** — the same tower inside an aluminum container.
//!
//! Each scenario's container mode bank was tuned so the end-to-end model
//! reproduces Figure 2's vulnerable bands: roughly 300 Hz–1.7 kHz in the
//! plastic scenarios and 300 Hz–1.3 kHz (writes) / 300–800 Hz (reads) in
//! the aluminum one.

use crate::enclosure::Enclosure;
use crate::mount::Mount;
use crate::path::VibrationPath;
use crate::resonator::{Resonator, ResonatorBank};
use serde::{Deserialize, Serialize};

/// One of the paper's experimental configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario 1: drive on the floor of a plastic container.
    PlasticDirect,
    /// Scenario 2: drive in a storage tower inside a plastic container.
    PlasticTower,
    /// Scenario 3: drive in a storage tower inside an aluminum container.
    MetalTower,
}

impl Scenario {
    /// All scenarios in paper order.
    pub const ALL: [Scenario; 3] = [
        Scenario::PlasticDirect,
        Scenario::PlasticTower,
        Scenario::MetalTower,
    ];

    /// The paper's label ("Scenario 1"…).
    pub fn label(self) -> &'static str {
        match self {
            Scenario::PlasticDirect => "Scenario 1",
            Scenario::PlasticTower => "Scenario 2",
            Scenario::MetalTower => "Scenario 3",
        }
    }

    /// The container modes for this scenario's enclosure.
    ///
    /// Plastic (lossy, soft) has broad modes stretching to ~1.7 kHz;
    /// aluminum (stiff, lightly damped) rings harder but cuts off lower,
    /// matching the Fig. 2 band edges.
    pub fn container_modes(self) -> ResonatorBank {
        match self {
            Scenario::PlasticDirect | Scenario::PlasticTower => ResonatorBank::new(0.30)
                .with_mode(Resonator::new(350.0, 1.7, 2.2))
                .with_mode(Resonator::new(650.0, 1.6, 2.8))
                .with_mode(Resonator::new(1_150.0, 1.9, 1.7))
                .with_mode(Resonator::new(1_600.0, 2.4, 1.1)),
            Scenario::MetalTower => ResonatorBank::new(0.22)
                .with_mode(Resonator::new(320.0, 2.8, 2.6))
                .with_mode(Resonator::new(600.0, 2.6, 3.2))
                .with_mode(Resonator::new(1_000.0, 2.9, 1.9))
                .with_mode(Resonator::new(1_250.0, 3.2, 1.2)),
        }
    }

    /// The enclosure used in this scenario.
    pub fn enclosure(self) -> Enclosure {
        match self {
            Scenario::PlasticDirect | Scenario::PlasticTower => Enclosure::paper_plastic(),
            Scenario::MetalTower => Enclosure::paper_aluminum(),
        }
    }

    /// The drive mount used in this scenario. The paper puts the drive in
    /// the tower's "second level from the bottom" (slot 1).
    pub fn mount(self) -> Mount {
        match self {
            Scenario::PlasticDirect => Mount::direct_on_floor(),
            Scenario::PlasticTower | Scenario::MetalTower => Mount::supermicro_tower(1),
        }
    }

    /// The assembled vibration path with the calibrated coupling.
    pub fn vibration_path(self) -> VibrationPath {
        VibrationPath::new(
            self.enclosure(),
            self.container_modes(),
            self.mount(),
            VibrationPath::DEFAULT_COUPLING,
        )
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::{Frequency, Spl};

    #[test]
    fn labels_follow_paper() {
        assert_eq!(Scenario::PlasticDirect.label(), "Scenario 1");
        assert_eq!(Scenario::PlasticTower.label(), "Scenario 2");
        assert_eq!(Scenario::MetalTower.label(), "Scenario 3");
        assert_eq!(Scenario::ALL.len(), 3);
    }

    #[test]
    fn tower_scenarios_respond_more_than_direct_at_mid_band() {
        let spl = Spl::water_db(140.0);
        let f = Frequency::from_hz(700.0);
        let s1 = Scenario::PlasticDirect
            .vibration_path()
            .drive_displacement_um(f, spl);
        let s2 = Scenario::PlasticTower
            .vibration_path()
            .drive_displacement_um(f, spl);
        assert!(s2 > s1, "s2 = {s2}, s1 = {s1}");
    }

    #[test]
    fn all_scenarios_resonate_in_the_vulnerable_band() {
        let spl = Spl::water_db(140.0);
        for scenario in Scenario::ALL {
            let path = scenario.vibration_path();
            let in_band = path.drive_displacement_um(Frequency::from_hz(650.0), spl);
            let out_band = path.drive_displacement_um(Frequency::from_khz(8.0), spl);
            assert!(
                in_band > 20.0 * out_band,
                "{scenario}: in = {in_band}, out = {out_band}"
            );
        }
    }

    #[test]
    fn metal_band_is_narrower_at_the_top() {
        // Relative to its own peak, the aluminum scenario must fall off
        // harder above 1.3 kHz than the plastic one (Fig. 2 band edges).
        let spl = Spl::water_db(140.0);
        let rel = |s: Scenario, hz: f64| {
            let p = s.vibration_path();
            p.drive_displacement_um(Frequency::from_hz(hz), spl)
                / p.drive_displacement_um(Frequency::from_hz(650.0), spl)
        };
        assert!(rel(Scenario::MetalTower, 1_600.0) < rel(Scenario::PlasticTower, 1_600.0));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Scenario::PlasticTower.to_string(), "Scenario 2");
    }
}
